//! # pgs-query — T-PS query processing
//!
//! Implements the paper's three-phase filter-and-verify pipeline (Section 1.2):
//!
//! 1. **Structural pruning** ([`structural`]) — discard graphs whose skeleton is
//!    not deterministically subgraph-similar to the query.
//! 2. **Probabilistic pruning** ([`prune`]) — use the PMI bounds to compute an
//!    upper bound `Usim(q)` (greedy weighted set cover, Algorithm 1,
//!    [`setcover`]) and a lower bound `Lsim(q)` (QP relaxation + randomized
//!    rounding, Algorithm 2, [`qp`]) of the subgraph similarity probability;
//!    Pruning rule 1 discards graphs, rule 2 accepts them outright.
//! 3. **Verification** ([`verify`]) — a Karp–Luby style sampler (Algorithm 5)
//!    estimates the SSP of the remaining candidates; an exact evaluator doubles
//!    as the `Exact` baseline.
//!
//! [`pipeline::QueryEngine`] ties the phases together and exposes the pruning
//! variants measured in the paper's Figures 10–13 (Structure, SSPBound,
//! OPT-SSPBound, SIPBound, OPT-SIPBound, PMI, Exact).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod prune;
pub mod qp;
pub mod setcover;
pub mod structural;
pub mod verify;

pub use pipeline::{
    default_query_threads, default_shards, BatchResult, EngineConfig, EngineLoadError,
    ExactScanConfig, IndexMismatch, PhaseStats, QueryEngine, QueryError, QueryParams, QueryResult,
};
pub use prune::{
    probabilistic_prune, prune_candidate, BoundInstance, CrossTermRule, PruneDecision, PruneOutcome,
};
pub use qp::{tightest_lsim, QpOptions};
pub use setcover::{greedy_weighted_set_cover, SetCoverSolution};
pub use structural::{
    passes_feature_count_filter, structural_candidates, structural_candidates_indexed,
    structural_candidates_sharded, structural_candidates_threaded, StructuralFilterStats,
};
pub use verify::{
    collect_embeddings_of_relaxations, collect_relaxed_embeddings, verify_ssp_exact,
    verify_ssp_sampled, verify_ssp_sampled_relaxed, VerifyOptions,
};
