//! Verification (Section 5): computing the subgraph similarity probability of
//! the candidates that survived pruning.
//!
//! The exact computation (Equation 21) needs exponentially many
//! inclusion–exclusion terms, so the paper estimates the SSP with a Karp–Luby
//! style coverage sampler (Algorithm 5) over the union of the embedding events
//! `Bf_1 ∨ ... ∨ Bf_m` of all relaxed queries:
//!
//! 1. compute `Pr(Bf_i)` for every embedding (exact under the factorised JPT
//!    model — the paper uses a junction tree for the same purpose) and their
//!    sum `V`;
//! 2. repeatedly pick an embedding `i` with probability `Pr(Bf_i)/V`, sample a
//!    possible world conditioned on `Bf_i` holding, and count the trials in
//!    which no earlier embedding `Bf_j (j < i)` also holds;
//! 3. the estimate is `V · cnt / N`, an unbiased estimator of the union
//!    probability with the usual `(τ, ξ)` Monte-Carlo guarantees.
//!
//! The estimator is executed by [`pgs_prob::union_sampler::UnionSampler`]:
//! the graph is projected onto the JPT tables the embedding union actually
//! touches, worlds live in a compact reusable bitset, embedding choice and
//! per-table row draws go through Walker alias tables, and the trials are
//! chunked with per-chunk derived RNGs so the estimate is byte-identical for
//! every thread count (see DESIGN.md §11).  The pre-projection loop survives
//! as [`verify_ssp_sampled_baseline`] — the benchmark and property-test
//! reference.
//!
//! [`verify_ssp_exact`] wraps the exact evaluator of `pgs-prob` and doubles as
//! the `Exact` baseline of Figures 9 and 13.

use crate::pipeline::QueryError;
use pgs_graph::embeddings::EdgeSet;
use pgs_graph::model::Graph;
use pgs_graph::relax::relax_query_clamped;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
use pgs_prob::error::ProbError;
use pgs_prob::exact::exact_ssp;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::montecarlo::MonteCarloConfig;
use pgs_prob::union_sampler::{StoppingRule, UnionSampler};
use rand::Rng;
use std::collections::HashSet;

/// Options of the verification sampler.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Monte-Carlo accuracy (`τ`, `ξ`, sample cap).
    pub mc: MonteCarloConfig,
    /// Cap on the number of distinct embeddings collected across all relaxed
    /// queries.
    pub max_embeddings: usize,
    /// Cap on relevant edges for the exact short-circuit: when the union of
    /// embedding edges is at most this many edges the SSP is computed exactly
    /// instead of sampled.
    pub exact_cutoff: usize,
    /// Whether the query pipeline may stop a candidate's sampler early once
    /// its running confidence interval has separated from the decision
    /// threshold (DESIGN.md §16).  Off, every sampled candidate draws the
    /// full `mc.num_samples()` budget — the fixed-budget baseline path.
    /// Defaults from [`default_adaptive`]; decisions stay within the
    /// `(τ, ξ)` accuracy band and byte-identical across thread counts
    /// either way.
    pub adaptive: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            mc: MonteCarloConfig::default(),
            max_embeddings: 256,
            exact_cutoff: 12,
            adaptive: default_adaptive(),
        }
    }
}

/// Default for [`VerifyOptions::adaptive`]: disabled when the `PGS_ADAPTIVE`
/// environment variable is set to `0`, `false` or `off` (CI uses it to pin
/// the fixed-budget baseline path over the whole test suite), otherwise
/// enabled.
pub fn default_adaptive() -> bool {
    !matches!(
        std::env::var("PGS_ADAPTIVE").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    )
}

impl VerifyOptions {
    /// Validates the options the way `ExactScanConfig::validate` does.
    ///
    /// A `max_embeddings` of zero used to be silently clamped to one VF2
    /// embedding per relaxed query, and a `NaN`/non-positive `τ` or `ξ` flows
    /// into the Monte-Carlo clamp which substitutes defaults — in both cases
    /// the engine would quietly answer at a precision nobody asked for, so
    /// the query entry points reject such options with a typed error instead.
    pub fn validate(&self) -> Result<(), QueryError> {
        let bad_tau = self.mc.tau.is_nan() || self.mc.tau <= 0.0;
        let bad_xi = self.mc.xi.is_nan() || self.mc.xi <= 0.0;
        if bad_tau || bad_xi || self.max_embeddings == 0 {
            return Err(QueryError::InvalidVerifyOptions {
                max_embeddings: self.max_embeddings,
                tau: self.mc.tau,
                xi: self.mc.xi,
            });
        }
        Ok(())
    }
}

/// The result of one candidate verification: the SSP value plus the work
/// counters the pipeline aggregates into `PhaseStats`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyOutcome {
    /// The (estimated or exact) subgraph similarity probability.
    pub ssp: f64,
    /// Monte-Carlo trials drawn (zero on the exact path).
    pub samples_drawn: usize,
    /// True when the answer came from the exact short-circuit (trivial δ,
    /// no embeddings, or relevant-edge set within `exact_cutoff`).
    pub exact: bool,
}

impl VerifyOutcome {
    fn exactly(ssp: f64) -> VerifyOutcome {
        VerifyOutcome {
            ssp,
            samples_drawn: 0,
            exact: true,
        }
    }
}

/// Estimates `Pr(q ⊆sim g)` with the Algorithm 5 sampler.
///
/// Convenience wrapper that derives the relaxed query set internally; when the
/// set is already known (the query pipeline computes it once per query), use
/// [`verify_ssp_sampled_relaxed`] to avoid re-deriving it for every candidate.
pub fn verify_ssp_sampled<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    options: &VerifyOptions,
    rng: &mut R,
) -> f64 {
    if q.edge_count() <= delta {
        return 1.0;
    }
    let relaxed = relax_query_clamped(q, delta);
    verify_ssp_sampled_relaxed(pg, q, delta, &relaxed, options, rng)
}

/// Estimates `Pr(q ⊆sim g)` with the Algorithm 5 sampler, reusing a
/// precomputed relaxed query set.
///
/// `relaxed` must be `relax_query_clamped(q, delta)` — the pipeline computes
/// it once per query and shares it between the pruning and verification
/// phases, so the `δ`-clamp lives in exactly one place
/// (`pgs_graph::relax::relax_query_clamped`).
pub fn verify_ssp_sampled_relaxed<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    relaxed: &[Graph],
    options: &VerifyOptions,
    rng: &mut R,
) -> f64 {
    verify_ssp_with_stats(pg, q, delta, relaxed, options, 1, rng).ssp
}

/// Full-fat verification entry point: Algorithm 5 over the
/// [`UnionSampler`], with work counters and optional intra-candidate
/// parallelism.
///
/// The Monte-Carlo trials are chunked deterministically and run on up to
/// `threads` workers (`0` = automatic, `1` = sequential); the per-chunk RNGs
/// are derived from one seed drawn from `rng`, so for a fixed caller RNG
/// state the result is **byte-identical for every thread count**.
pub fn verify_ssp_with_stats<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    relaxed: &[Graph],
    options: &VerifyOptions,
    threads: usize,
    rng: &mut R,
) -> VerifyOutcome {
    if q.edge_count() <= delta {
        return VerifyOutcome::exactly(1.0);
    }
    let embeddings = collect_embeddings_of_relaxations(pg, relaxed, options.max_embeddings);
    if embeddings.is_empty() {
        return VerifyOutcome::exactly(0.0);
    }
    // Small instances: answer exactly (cheaper and noise-free).
    let mut relevant: Vec<_> = embeddings.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    if relevant.len() <= options.exact_cutoff {
        if let Ok(value) =
            pgs_prob::exact::exact_union_probability(pg, &embeddings, options.exact_cutoff)
        {
            return VerifyOutcome::exactly(value);
        }
    }

    // --- Algorithm 5 over the projected bitset sampler -------------------
    let Some(sampler) = UnionSampler::with_relevant(pg, &embeddings, &relevant) else {
        // The union event has probability zero (every Pr(Bf_i) = 0).
        return VerifyOutcome::exactly(0.0);
    };
    let n = options.mc.num_samples();
    let seed: u64 = rng.gen();
    VerifyOutcome {
        ssp: sampler.estimate_chunked(n, seed, threads),
        samples_drawn: n,
        exact: false,
    }
}

/// The result of one bound-adaptive candidate verification (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveVerdict {
    /// The (estimated or exact) subgraph similarity probability.  On an early
    /// stop this is the running estimate at the stopping boundary — only its
    /// relation to the threshold is resolved, not its full-budget value.
    pub ssp: f64,
    /// Whether the candidate meets the decision threshold (`ssp ≥ threshold`
    /// resolved either by the stopping rule or by the final estimate).
    pub meets: bool,
    /// Monte-Carlo trials actually drawn (zero on the exact path).
    pub samples_drawn: usize,
    /// Trials a fixed-budget run would have drawn (`mc.num_samples()` on the
    /// sampled path, zero on the exact path) — `budget - samples_drawn` is
    /// the work the stopping rule saved.
    pub budget: usize,
    /// True when the answer came from the exact short-circuit.
    pub exact: bool,
    /// `Some(decision)` when the stopping rule fired before the budget was
    /// exhausted, `None` when the sampler ran to completion (or the exact
    /// path answered).
    pub early: Option<bool>,
}

impl AdaptiveVerdict {
    fn exactly(ssp: f64, threshold: f64) -> AdaptiveVerdict {
        AdaptiveVerdict {
            ssp,
            meets: ssp >= threshold,
            samples_drawn: 0,
            budget: 0,
            exact: true,
            early: None,
        }
    }
}

/// Bound-adaptive verification: [`verify_ssp_with_stats`] with an early
/// stopping rule on the sampler (DESIGN.md §16).
///
/// The exact short-circuits (trivial `δ`, no embeddings, relevant-edge set
/// within `exact_cutoff`, zero-weight union) are identical to
/// [`verify_ssp_with_stats`], and the sampled path draws its chunk seed from
/// `rng` at the same point of the RNG stream — so with the stopping rule
/// disabled the two entry points are bit-for-bit interchangeable.  With it
/// enabled, [`UnionSampler::estimate_adaptive`] checks the running
/// Hoeffding interval at deterministic chunk boundaries and stops as soon as
/// the interval separates from `threshold`; `accept_early = false` restricts
/// stopping to rejections (the top-k path needs full-budget estimates for
/// its ranked winners).
///
/// Decisions are byte-identical across thread counts and repeats, and stay
/// within the `(τ, ξ)` accuracy band of the fixed-budget estimate.
#[allow(clippy::too_many_arguments)]
pub fn verify_ssp_adaptive<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    relaxed: &[Graph],
    options: &VerifyOptions,
    threshold: f64,
    accept_early: bool,
    threads: usize,
    rng: &mut R,
) -> AdaptiveVerdict {
    if q.edge_count() <= delta {
        return AdaptiveVerdict::exactly(1.0, threshold);
    }
    let embeddings = collect_embeddings_of_relaxations(pg, relaxed, options.max_embeddings);
    if embeddings.is_empty() {
        return AdaptiveVerdict::exactly(0.0, threshold);
    }
    let mut relevant: Vec<_> = embeddings.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    if relevant.len() <= options.exact_cutoff {
        if let Ok(value) =
            pgs_prob::exact::exact_union_probability(pg, &embeddings, options.exact_cutoff)
        {
            return AdaptiveVerdict::exactly(value, threshold);
        }
    }
    let Some(sampler) = UnionSampler::with_relevant(pg, &embeddings, &relevant) else {
        return AdaptiveVerdict::exactly(0.0, threshold);
    };
    let n = options.mc.num_samples();
    let seed: u64 = rng.gen();
    let rule = StoppingRule {
        threshold,
        xi: options.mc.xi,
        accept_early,
    };
    let est = sampler.estimate_adaptive(n, seed, threads, &rule);
    AdaptiveVerdict {
        ssp: est.estimate,
        meets: est.decision.unwrap_or(est.estimate >= threshold),
        samples_drawn: est.samples_drawn,
        budget: n,
        exact: false,
        early: est.decision,
    }
}

/// The pre-projection Algorithm 5 loop, kept verbatim as the baseline the
/// benchmark harness (`experiments -- bench-verify`) and the property tests
/// measure the [`UnionSampler`] against: per trial it allocates a fresh world
/// over *all* edges, rebuilds the conditioning constraint, samples every JPT
/// table and picks the conditioning embedding by a linear scan.
pub fn verify_ssp_sampled_baseline<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    relaxed: &[Graph],
    options: &VerifyOptions,
    rng: &mut R,
) -> f64 {
    if q.edge_count() <= delta {
        return 1.0;
    }
    let embeddings = collect_embeddings_of_relaxations(pg, relaxed, options.max_embeddings);
    if embeddings.is_empty() {
        return 0.0;
    }
    let mut relevant: Vec<_> = embeddings.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    if relevant.len() <= options.exact_cutoff {
        if let Ok(value) =
            pgs_prob::exact::exact_union_probability(pg, &embeddings, options.exact_cutoff)
        {
            return value;
        }
    }
    let probs: Vec<f64> = embeddings.iter().map(|e| pg.prob_all_present(e)).collect();
    let v: f64 = probs.iter().sum();
    if v <= 0.0 {
        return 0.0;
    }
    let n = options.mc.num_samples();
    let mut count = 0usize;
    for _ in 0..n {
        // Choose embedding i with probability Pr(Bf_i) / V.
        let mut pick = rng.gen::<f64>() * v;
        let mut chosen = embeddings.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if pick < p {
                chosen = i;
                break;
            }
            pick -= p;
        }
        // Sample a world conditioned on the chosen embedding being present.
        let constraint: Vec<(pgs_graph::model::EdgeId, bool)> =
            embeddings[chosen].iter().map(|&e| (e, true)).collect();
        let world = pg.sample_world_conditioned(rng, &constraint);
        // Count the trial iff no earlier embedding also holds (canonical-pair
        // trick of the Karp–Luby estimator).
        let earlier_hit = embeddings[..chosen]
            .iter()
            .any(|emb| emb.iter().all(|&e| world[e.index()]));
        if !earlier_hit {
            count += 1;
        }
    }
    (v * count as f64 / n as f64).clamp(0.0, 1.0)
}

/// Exact verification (Definition 9 via Lemma 1) — the `Exact` baseline.
pub fn verify_ssp_exact(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    limit: usize,
) -> Result<f64, ProbError> {
    exact_ssp(pg, q, delta, limit)
}

/// Collects the distinct embeddings (edge sets) of every relaxed query in the
/// skeleton of `pg`, deriving the relaxed set from `(q, delta)`.
pub fn collect_relaxed_embeddings(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    max_embeddings: usize,
) -> Vec<EdgeSet> {
    collect_embeddings_of_relaxations(pg, &relax_query_clamped(q, delta), max_embeddings)
}

/// Collects the distinct embeddings (edge sets) of every graph in `relaxed`
/// within the skeleton of `pg`, capped at `max_embeddings` in total.
///
/// Deduplication is a hash-set membership test on the (already sorted)
/// edge set — O(1) amortised per embedding instead of the former
/// `Vec::contains` linear scan, which made collection quadratic in the
/// embedding cap.  The output keeps first-seen order, so the collected list
/// is identical to what the linear scan produced.
pub fn collect_embeddings_of_relaxations(
    pg: &ProbabilisticGraph,
    relaxed: &[Graph],
    max_embeddings: usize,
) -> Vec<EdgeSet> {
    let mut seen: HashSet<EdgeSet> = HashSet::new();
    let mut out: Vec<EdgeSet> = Vec::new();
    for rq in relaxed {
        if rq.edge_count() == 0 {
            continue;
        }
        let outcome = enumerate_embeddings(
            rq,
            pg.skeleton(),
            MatchOptions::capped(max_embeddings.saturating_sub(out.len()).max(1)),
        );
        for emb in outcome.embeddings {
            if seen.insert(emb.edges.clone()) {
                out.push(emb.edges);
            }
        }
        if out.len() >= max_embeddings {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_datagen::scenarios::verification_candidate;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_prob::jpt::JointProbTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    /// Triangle over labels {0, 1, 2}: embeds in `fixture_002` through its
    /// relaxations and exactly in the labelled triangle region of
    /// `pgs_datagen::scenarios::verification_candidate`.
    fn query() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    #[test]
    fn sampled_ssp_matches_exact_on_the_fixture() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(42);
        for delta in 0..=2 {
            let exact = verify_ssp_exact(&pg, &q, delta, 22).unwrap();
            // Exercise the true sampling path by setting the exact cutoff to 0.
            let options = VerifyOptions {
                exact_cutoff: 0,
                mc: MonteCarloConfig {
                    tau: 0.05,
                    xi: 0.01,
                    max_samples: 40_000,
                },
                ..VerifyOptions::default()
            };
            let sampled = verify_ssp_sampled(&pg, &q, delta, &options, &mut rng);
            assert!(
                (sampled - exact).abs() < 0.03,
                "delta={delta}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sampled_ssp_matches_exact_with_irrelevant_tables() {
        // The projection must not change the answer when the graph carries
        // many JPT tables the embedding union never touches.
        let (pg, q) = verification_candidate(12);
        assert_eq!(pg.tables().len(), 13);
        let options = VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 40_000,
            },
            ..VerifyOptions::default()
        };
        let mut rng = StdRng::seed_from_u64(1234);
        for delta in 0..=1 {
            let exact = verify_ssp_exact(&pg, &q, delta, 22).unwrap();
            let relaxed = relax_query_clamped(&q, delta);
            let outcome = verify_ssp_with_stats(&pg, &q, delta, &relaxed, &options, 1, &mut rng);
            assert!(!outcome.exact);
            assert_eq!(outcome.samples_drawn, options.mc.num_samples());
            assert!(
                (outcome.ssp - exact).abs() < 0.03,
                "delta={delta}: sampled {} vs exact {exact}",
                outcome.ssp
            );
        }
    }

    #[test]
    fn with_stats_is_thread_count_invariant() {
        let (pg, q) = verification_candidate(8);
        let options = VerifyOptions {
            exact_cutoff: 0,
            ..VerifyOptions::default()
        };
        let relaxed = relax_query_clamped(&q, 1);
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(99);
            verify_ssp_with_stats(&pg, &q, 1, &relaxed, &options, threads, &mut rng)
        };
        let reference = run(1);
        for threads in [2usize, 4, 8, 0] {
            assert_eq!(run(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn baseline_and_union_sampler_agree() {
        let (pg, q) = verification_candidate(6);
        let options = VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 40_000,
            },
            ..VerifyOptions::default()
        };
        let relaxed = relax_query_clamped(&q, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let baseline = verify_ssp_sampled_baseline(&pg, &q, 1, &relaxed, &options, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let fast = verify_ssp_sampled_relaxed(&pg, &q, 1, &relaxed, &options, &mut rng);
        assert!(
            (baseline - fast).abs() < 0.03,
            "baseline {baseline} vs union sampler {fast}"
        );
    }

    #[test]
    fn exact_shortcut_is_used_for_small_instances() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(7);
        let exact = verify_ssp_exact(&pg, &q, 1, 22).unwrap();
        let via_default = verify_ssp_sampled(&pg, &q, 1, &VerifyOptions::default(), &mut rng);
        // With the default cutoff (12 ≥ 5 relevant edges) the result is exact.
        assert!((via_default - exact).abs() < 1e-9);
        // The stats variant reports the shortcut.
        let relaxed = relax_query_clamped(&q, 1);
        let outcome =
            verify_ssp_with_stats(&pg, &q, 1, &relaxed, &VerifyOptions::default(), 1, &mut rng);
        assert!(outcome.exact);
        assert_eq!(outcome.samples_drawn, 0);
    }

    #[test]
    fn degenerate_cases() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(9);
        // Query smaller than delta: probability 1.
        let tiny = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        assert_eq!(
            verify_ssp_sampled(&pg, &tiny, 1, &VerifyOptions::default(), &mut rng),
            1.0
        );
        // Query with labels absent from the graph: probability 0.
        let foreign = GraphBuilder::new().vertices(&[8, 9]).edge(0, 1, 9).build();
        assert_eq!(
            verify_ssp_sampled(&pg, &foreign, 0, &VerifyOptions::default(), &mut rng),
            0.0
        );
    }

    #[test]
    fn collect_embeddings_dedups_and_caps() {
        let pg = fixture_002();
        let q = query();
        let all = collect_relaxed_embeddings(&pg, &q, 1, 100);
        assert!(!all.is_empty());
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "duplicate embedding edge sets");
            }
        }
        let capped = collect_relaxed_embeddings(&pg, &q, 1, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn hashset_dedup_matches_the_linear_scan_reference() {
        // The pre-PR O(n²) reference implementation, kept here as the oracle:
        // the hash-set dedup must collect the same embeddings in the same
        // order for any (pg, relaxed, cap) input.
        fn reference(pg: &ProbabilisticGraph, relaxed: &[Graph], cap: usize) -> Vec<EdgeSet> {
            let mut out: Vec<EdgeSet> = Vec::new();
            for rq in relaxed {
                if rq.edge_count() == 0 {
                    continue;
                }
                let outcome = enumerate_embeddings(
                    rq,
                    pg.skeleton(),
                    MatchOptions::capped(cap.saturating_sub(out.len()).max(1)),
                );
                for emb in outcome.embeddings {
                    if !out.contains(&emb.edges) {
                        out.push(emb.edges);
                    }
                }
                if out.len() >= cap {
                    break;
                }
            }
            out
        }
        for extra in [0usize, 4, 9] {
            let (pg, triangle) = verification_candidate(extra);
            for delta in 0..=2usize {
                for cap in [1usize, 2, 5, 100] {
                    let relaxed = relax_query_clamped(&triangle, delta);
                    assert_eq!(
                        collect_embeddings_of_relaxations(&pg, &relaxed, cap),
                        reference(&pg, &relaxed, cap),
                        "extra={extra} delta={delta} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn verify_options_validation() {
        assert!(VerifyOptions::default().validate().is_ok());
        let bad = [
            VerifyOptions {
                max_embeddings: 0,
                ..VerifyOptions::default()
            },
            VerifyOptions {
                mc: MonteCarloConfig {
                    tau: f64::NAN,
                    ..MonteCarloConfig::default()
                },
                ..VerifyOptions::default()
            },
            VerifyOptions {
                mc: MonteCarloConfig {
                    tau: -1.0,
                    ..MonteCarloConfig::default()
                },
                ..VerifyOptions::default()
            },
            VerifyOptions {
                mc: MonteCarloConfig {
                    xi: 0.0,
                    ..MonteCarloConfig::default()
                },
                ..VerifyOptions::default()
            },
        ];
        for options in bad {
            match options.validate() {
                Err(QueryError::InvalidVerifyOptions { .. }) => {}
                other => panic!("expected a typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn adaptive_without_a_stop_matches_with_stats_bitwise() {
        // With a threshold the interval can never separate from (and early
        // accepts disabled), the adaptive path must reproduce the fixed-budget
        // estimate bit for bit: same short-circuits, same seed draw, same
        // chunk arithmetic.
        let (pg, q) = verification_candidate(8);
        let options = VerifyOptions {
            exact_cutoff: 0,
            ..VerifyOptions::default()
        };
        let relaxed = relax_query_clamped(&q, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let fixed = verify_ssp_with_stats(&pg, &q, 1, &relaxed, &options, 1, &mut rng);
        let mut rng = StdRng::seed_from_u64(99);
        let adaptive = verify_ssp_adaptive(&pg, &q, 1, &relaxed, &options, 0.0, false, 1, &mut rng);
        assert_eq!(adaptive.ssp.to_bits(), fixed.ssp.to_bits());
        assert_eq!(adaptive.samples_drawn, fixed.samples_drawn);
        assert_eq!(adaptive.budget, options.mc.num_samples());
        assert_eq!(adaptive.early, None);
        assert!(adaptive.meets);
    }

    #[test]
    fn adaptive_decisions_agree_with_the_fixed_budget_path() {
        // Across thresholds spanning the whole range, the adaptive decision
        // must match `estimate >= threshold` of the fixed-budget run whenever
        // the fixed estimate is outside the (τ, ξ) band around the threshold
        // (inside the band either answer is within the accuracy contract).
        let (pg, q) = verification_candidate(10);
        let options = VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 40_000,
            },
            ..VerifyOptions::default()
        };
        let relaxed = relax_query_clamped(&q, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let fixed = verify_ssp_with_stats(&pg, &q, 1, &relaxed, &options, 1, &mut rng);
        let mut saved_total = 0usize;
        for threshold in [0.0, 0.05, 0.2, 0.5, 0.8, 0.95, 1.0] {
            let mut rng = StdRng::seed_from_u64(5);
            let verdict =
                verify_ssp_adaptive(&pg, &q, 1, &relaxed, &options, threshold, true, 1, &mut rng);
            assert!(verdict.samples_drawn <= verdict.budget);
            saved_total += verdict.budget - verdict.samples_drawn;
            if (fixed.ssp - threshold).abs() > options.mc.tau {
                assert_eq!(
                    verdict.meets,
                    fixed.ssp >= threshold,
                    "threshold={threshold}: adaptive {} (early {:?}) vs fixed {}",
                    verdict.ssp,
                    verdict.early,
                    fixed.ssp
                );
            }
        }
        // Clear thresholds (far above or below the true SSP) must stop early.
        assert!(saved_total > 0, "no samples saved on any clear threshold");
    }

    #[test]
    fn adaptive_exact_shortcuts_match_with_stats() {
        let pg = fixture_002();
        let q = query();
        let relaxed = relax_query_clamped(&q, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let fixed =
            verify_ssp_with_stats(&pg, &q, 1, &relaxed, &VerifyOptions::default(), 1, &mut rng);
        assert!(fixed.exact);
        let mut rng = StdRng::seed_from_u64(7);
        let verdict = verify_ssp_adaptive(
            &pg,
            &q,
            1,
            &relaxed,
            &VerifyOptions::default(),
            0.5,
            true,
            1,
            &mut rng,
        );
        assert!(verdict.exact);
        assert_eq!(verdict.ssp.to_bits(), fixed.ssp.to_bits());
        assert_eq!(verdict.samples_drawn, 0);
        assert_eq!(verdict.budget, 0);
        assert_eq!(verdict.meets, fixed.ssp >= 0.5);
        // Trivial δ and no-embedding shortcuts.
        let tiny = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        let verdict = verify_ssp_adaptive(
            &pg,
            &tiny,
            1,
            &[],
            &VerifyOptions::default(),
            0.5,
            true,
            1,
            &mut rng,
        );
        assert!(verdict.exact && verdict.meets && verdict.ssp == 1.0);
        let foreign = GraphBuilder::new().vertices(&[8, 9]).edge(0, 1, 9).build();
        let relaxed = relax_query_clamped(&foreign, 0);
        let verdict = verify_ssp_adaptive(
            &pg,
            &foreign,
            0,
            &relaxed,
            &VerifyOptions::default(),
            0.5,
            true,
            1,
            &mut rng,
        );
        assert!(verdict.exact && !verdict.meets && verdict.ssp == 0.0);
    }

    #[test]
    fn sampler_is_monotone_in_delta_on_average() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(21);
        let opts = VerifyOptions::default();
        let p0 = verify_ssp_sampled(&pg, &q, 0, &opts, &mut rng);
        let p1 = verify_ssp_sampled(&pg, &q, 1, &opts, &mut rng);
        let p2 = verify_ssp_sampled(&pg, &q, 2, &opts, &mut rng);
        assert!(p0 <= p1 + 0.05);
        assert!(p1 <= p2 + 0.05);
    }
}
