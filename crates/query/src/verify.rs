//! Verification (Section 5): computing the subgraph similarity probability of
//! the candidates that survived pruning.
//!
//! The exact computation (Equation 21) needs exponentially many
//! inclusion–exclusion terms, so the paper estimates the SSP with a Karp–Luby
//! style coverage sampler (Algorithm 5) over the union of the embedding events
//! `Bf_1 ∨ ... ∨ Bf_m` of all relaxed queries:
//!
//! 1. compute `Pr(Bf_i)` for every embedding (exact under the factorised JPT
//!    model — the paper uses a junction tree for the same purpose) and their
//!    sum `V`;
//! 2. repeatedly pick an embedding `i` with probability `Pr(Bf_i)/V`, sample a
//!    possible world conditioned on `Bf_i` holding, and count the trials in
//!    which no earlier embedding `Bf_j (j < i)` also holds;
//! 3. the estimate is `V · cnt / N`, an unbiased estimator of the union
//!    probability with the usual `(τ, ξ)` Monte-Carlo guarantees.
//!
//! [`verify_ssp_exact`] wraps the exact evaluator of `pgs-prob` and doubles as
//! the `Exact` baseline of Figures 9 and 13.

use pgs_graph::embeddings::EdgeSet;
use pgs_graph::model::Graph;
use pgs_graph::relax::relax_query_clamped;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
use pgs_prob::error::ProbError;
use pgs_prob::exact::exact_ssp;
use pgs_prob::model::ProbabilisticGraph;
use pgs_prob::montecarlo::MonteCarloConfig;
use rand::Rng;

/// Options of the verification sampler.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Monte-Carlo accuracy (`τ`, `ξ`, sample cap).
    pub mc: MonteCarloConfig,
    /// Cap on the number of distinct embeddings collected across all relaxed
    /// queries.
    pub max_embeddings: usize,
    /// Cap on relevant edges for the exact short-circuit: when the union of
    /// embedding edges is at most this many edges the SSP is computed exactly
    /// instead of sampled.
    pub exact_cutoff: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            mc: MonteCarloConfig::default(),
            max_embeddings: 256,
            exact_cutoff: 12,
        }
    }
}

/// Estimates `Pr(q ⊆sim g)` with the Algorithm 5 sampler.
///
/// Convenience wrapper that derives the relaxed query set internally; when the
/// set is already known (the query pipeline computes it once per query), use
/// [`verify_ssp_sampled_relaxed`] to avoid re-deriving it for every candidate.
pub fn verify_ssp_sampled<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    options: &VerifyOptions,
    rng: &mut R,
) -> f64 {
    if q.edge_count() <= delta {
        return 1.0;
    }
    let relaxed = relax_query_clamped(q, delta);
    verify_ssp_sampled_relaxed(pg, q, delta, &relaxed, options, rng)
}

/// Estimates `Pr(q ⊆sim g)` with the Algorithm 5 sampler, reusing a
/// precomputed relaxed query set.
///
/// `relaxed` must be `relax_query_clamped(q, delta)` — the pipeline computes
/// it once per query and shares it between the pruning and verification
/// phases, so the `δ`-clamp lives in exactly one place
/// (`pgs_graph::relax::relax_query_clamped`).
pub fn verify_ssp_sampled_relaxed<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    relaxed: &[Graph],
    options: &VerifyOptions,
    rng: &mut R,
) -> f64 {
    if q.edge_count() <= delta {
        return 1.0;
    }
    let embeddings = collect_embeddings_of_relaxations(pg, relaxed, options.max_embeddings);
    if embeddings.is_empty() {
        return 0.0;
    }
    // Small instances: answer exactly (cheaper and noise-free).
    let mut relevant: Vec<_> = embeddings.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    if relevant.len() <= options.exact_cutoff {
        if let Ok(value) =
            pgs_prob::exact::exact_union_probability(pg, &embeddings, options.exact_cutoff)
        {
            return value;
        }
    }

    // --- Algorithm 5 -----------------------------------------------------
    let probs: Vec<f64> = embeddings.iter().map(|e| pg.prob_all_present(e)).collect();
    let v: f64 = probs.iter().sum();
    if v <= 0.0 {
        return 0.0;
    }
    let n = options.mc.num_samples();
    let mut count = 0usize;
    for _ in 0..n {
        // Choose embedding i with probability Pr(Bf_i) / V.
        let mut pick = rng.gen::<f64>() * v;
        let mut chosen = embeddings.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if pick < p {
                chosen = i;
                break;
            }
            pick -= p;
        }
        // Sample a world conditioned on the chosen embedding being present.
        let constraint: Vec<(pgs_graph::model::EdgeId, bool)> =
            embeddings[chosen].iter().map(|&e| (e, true)).collect();
        let world = pg.sample_world_conditioned(rng, &constraint);
        // Count the trial iff no earlier embedding also holds (canonical-pair
        // trick of the Karp–Luby estimator).
        let earlier_hit = embeddings[..chosen]
            .iter()
            .any(|emb| emb.iter().all(|&e| world[e.index()]));
        if !earlier_hit {
            count += 1;
        }
    }
    (v * count as f64 / n as f64).clamp(0.0, 1.0)
}

/// Exact verification (Definition 9 via Lemma 1) — the `Exact` baseline.
pub fn verify_ssp_exact(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    limit: usize,
) -> Result<f64, ProbError> {
    exact_ssp(pg, q, delta, limit)
}

/// Collects the distinct embeddings (edge sets) of every relaxed query in the
/// skeleton of `pg`, deriving the relaxed set from `(q, delta)`.
pub fn collect_relaxed_embeddings(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    max_embeddings: usize,
) -> Vec<EdgeSet> {
    collect_embeddings_of_relaxations(pg, &relax_query_clamped(q, delta), max_embeddings)
}

/// Collects the distinct embeddings (edge sets) of every graph in `relaxed`
/// within the skeleton of `pg`, capped at `max_embeddings` in total.
pub fn collect_embeddings_of_relaxations(
    pg: &ProbabilisticGraph,
    relaxed: &[Graph],
    max_embeddings: usize,
) -> Vec<EdgeSet> {
    let mut out: Vec<EdgeSet> = Vec::new();
    for rq in relaxed {
        if rq.edge_count() == 0 {
            continue;
        }
        let outcome = enumerate_embeddings(
            rq,
            pg.skeleton(),
            MatchOptions::capped(max_embeddings.saturating_sub(out.len()).max(1)),
        );
        for emb in outcome.embeddings {
            if !out.contains(&emb.edges) {
                out.push(emb.edges);
            }
        }
        if out.len() >= max_embeddings {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{EdgeId, GraphBuilder};
    use pgs_prob::jpt::JointProbTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    fn query() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    #[test]
    fn sampled_ssp_matches_exact_on_the_fixture() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(42);
        for delta in 0..=2 {
            let exact = verify_ssp_exact(&pg, &q, delta, 22).unwrap();
            // Exercise the true sampling path by setting the exact cutoff to 0.
            let options = VerifyOptions {
                exact_cutoff: 0,
                mc: MonteCarloConfig {
                    tau: 0.05,
                    xi: 0.01,
                    max_samples: 40_000,
                },
                ..VerifyOptions::default()
            };
            let sampled = verify_ssp_sampled(&pg, &q, delta, &options, &mut rng);
            assert!(
                (sampled - exact).abs() < 0.03,
                "delta={delta}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn exact_shortcut_is_used_for_small_instances() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(7);
        let exact = verify_ssp_exact(&pg, &q, 1, 22).unwrap();
        let via_default = verify_ssp_sampled(&pg, &q, 1, &VerifyOptions::default(), &mut rng);
        // With the default cutoff (12 ≥ 5 relevant edges) the result is exact.
        assert!((via_default - exact).abs() < 1e-9);
    }

    #[test]
    fn degenerate_cases() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(9);
        // Query smaller than delta: probability 1.
        let tiny = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 9).build();
        assert_eq!(
            verify_ssp_sampled(&pg, &tiny, 1, &VerifyOptions::default(), &mut rng),
            1.0
        );
        // Query with labels absent from the graph: probability 0.
        let foreign = GraphBuilder::new().vertices(&[8, 9]).edge(0, 1, 9).build();
        assert_eq!(
            verify_ssp_sampled(&pg, &foreign, 0, &VerifyOptions::default(), &mut rng),
            0.0
        );
    }

    #[test]
    fn collect_embeddings_dedups_and_caps() {
        let pg = fixture_002();
        let q = query();
        let all = collect_relaxed_embeddings(&pg, &q, 1, 100);
        assert!(!all.is_empty());
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "duplicate embedding edge sets");
            }
        }
        let capped = collect_relaxed_embeddings(&pg, &q, 1, 2);
        assert!(capped.len() <= 2);
    }

    #[test]
    fn sampler_is_monotone_in_delta_on_average() {
        let pg = fixture_002();
        let q = query();
        let mut rng = StdRng::seed_from_u64(21);
        let opts = VerifyOptions::default();
        let p0 = verify_ssp_sampled(&pg, &q, 0, &opts, &mut rng);
        let p1 = verify_ssp_sampled(&pg, &q, 1, &opts, &mut rng);
        let p2 = verify_ssp_sampled(&pg, &q, 2, &opts, &mut rng);
        assert!(p0 <= p1 + 0.05);
        assert!(p1 <= p2 + 0.05);
    }
}
