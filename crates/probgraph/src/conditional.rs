//! Algorithm 3: Monte-Carlo estimation of `Pr(Bf_i | COR)` / `Pr(Bc_i | COM)`.
//!
//! The SIP bounds of Section 4.1 need, for every selected embedding `f_i` (or
//! cut `c_i`), the probability that its event occurs *conditioned on none of
//! the overlapping embeddings (cuts) occurring*:
//!
//! * embeddings — event: all edges of `f_i` present; conditioning: no
//!   overlapping embedding has all of its edges present;
//! * cuts — event: all edges of `c_i` absent; conditioning: no overlapping cut
//!   has all of its edges absent.
//!
//! Algorithm 3 samples possible worlds and returns the ratio `n1/n2` of
//! "event ∧ condition" to "condition" counts.  We implement it verbatim plus an
//! exact variant (restricted-assignment enumeration) used as a test oracle and
//! automatically selected when the relevant edge set is small.

use crate::model::ProbabilisticGraph;
use crate::montecarlo::MonteCarloConfig;
use crate::sample::{all_absent, all_present};
use crate::union_sampler::{mask_covered, mask_disjoint, ProjectedWorlds};
use crate::world::enumerate_assignments_over;
use pgs_graph::embeddings::EdgeSet;
use pgs_graph::model::EdgeId;
use rand::Rng;

/// Which event family the estimator works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Embedding events: "all edges of the set are present".
    Embedding,
    /// Cut events: "all edges of the set are absent".
    Cut,
}

impl EventKind {
    /// True if the event holds in a projected bitset world (`mask` built over
    /// the same projection as `world`).
    fn holds_mask(self, world: &[u64], mask: &[u64]) -> bool {
        match self {
            EventKind::Embedding => mask_covered(world, mask),
            EventKind::Cut => mask_disjoint(world, mask),
        }
    }
}

/// Estimates `Pr(event(target) | ¬event(c) ∀ c ∈ competitors)` by sampling
/// possible worlds (Algorithm 3).
///
/// When the conditioning event never occurs in the sample (n2 = 0) the
/// unconditional probability of the target event is returned as a fallback —
/// with a valid model this only happens for extremely unlikely conditionings,
/// where either value leaves the bounds conservative.
pub fn conditional_event_probability<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    target: &[EdgeId],
    competitors: &[EdgeSet],
    kind: EventKind,
    config: &MonteCarloConfig,
    rng: &mut R,
) -> f64 {
    // Small instances: compute exactly over the union of the relevant edges.
    let relevant = relevant_edges(target, competitors);
    if relevant.len() <= 16 {
        if let Ok(value) = exact_conditional_event_probability(pg, target, competitors, kind) {
            return value;
        }
    }
    // Sampling path: project onto the tables the relevant edges touch (every
    // other table is independent of both events under the partitioned model)
    // and evaluate the events as word-wise mask compares on a reused scratch
    // bitset — zero allocation per trial.
    let projection = ProjectedWorlds::new(pg, &relevant);
    let target_mask = projection.mask_of(target);
    let competitor_masks: Vec<Vec<u64>> =
        competitors.iter().map(|c| projection.mask_of(c)).collect();
    let mut scratch = vec![0u64; projection.words()];
    let n = config.num_samples();
    let mut n1 = 0usize;
    let mut n2 = 0usize;
    for _ in 0..n {
        projection.sample_into(rng, &mut scratch);
        let competitor_hit = competitor_masks
            .iter()
            .any(|m| kind.holds_mask(&scratch, m));
        if !competitor_hit {
            n2 += 1;
            if kind.holds_mask(&scratch, &target_mask) {
                n1 += 1;
            }
        }
    }
    if n2 == 0 {
        return match kind {
            EventKind::Embedding => pg.prob_all_present(target),
            EventKind::Cut => pg.prob_all_absent(target),
        };
    }
    n1 as f64 / n2 as f64
}

/// Exact version of [`conditional_event_probability`]: enumerates all
/// assignments of the union of the relevant edges (errors if that union is too
/// large to enumerate).
pub fn exact_conditional_event_probability(
    pg: &ProbabilisticGraph,
    target: &[EdgeId],
    competitors: &[EdgeSet],
    kind: EventKind,
) -> Result<f64, crate::error::ProbError> {
    let relevant = relevant_edges(target, competitors);
    let assignments = enumerate_assignments_over(pg, &relevant, 22)?;
    let mut p_condition = 0.0;
    let mut p_joint = 0.0;
    for a in &assignments {
        let present = |e: EdgeId| a.is_present(e);
        let competitor_hit = competitors.iter().any(|c| match kind {
            EventKind::Embedding => c.iter().all(|&e| present(e)),
            EventKind::Cut => c.iter().all(|&e| !present(e)),
        });
        if competitor_hit {
            continue;
        }
        p_condition += a.probability;
        let target_holds = match kind {
            EventKind::Embedding => target.iter().all(|&e| present(e)),
            EventKind::Cut => target.iter().all(|&e| !present(e)),
        };
        if target_holds {
            p_joint += a.probability;
        }
    }
    if p_condition <= 0.0 {
        return Ok(match kind {
            EventKind::Embedding => pg.prob_all_present(target),
            EventKind::Cut => pg.prob_all_absent(target),
        });
    }
    Ok(p_joint / p_condition)
}

/// Convenience wrappers matching the helper predicates used by Algorithm 5.
pub fn world_has_embedding(world: &[bool], embedding: &[EdgeId]) -> bool {
    all_present(world, embedding)
}

/// True if the cut is "active" in the world (all of its edges absent).
pub fn world_has_cut(world: &[bool], cut: &[EdgeId]) -> bool {
    all_absent(world, cut)
}

fn relevant_edges(target: &[EdgeId], competitors: &[EdgeSet]) -> Vec<EdgeId> {
    let mut all: Vec<EdgeId> = target.to_vec();
    for c in competitors {
        all.extend_from_slice(c);
    }
    all.sort_unstable();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpt::JointProbTable;
    use pgs_graph::model::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 4-edge path with two independent-table groups so both exact and
    /// sampled paths are exercised.
    fn pg() -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .edge(3, 4, 0)
            .build();
        let t1 = JointProbTable::from_max_rule(&[(EdgeId(0), 0.6), (EdgeId(1), 0.5)]).unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(2), 0.7), (EdgeId(3), 0.3)]).unwrap();
        ProbabilisticGraph::new(g, vec![t1, t2], true).unwrap()
    }

    #[test]
    fn no_competitors_reduces_to_unconditional() {
        let pg = pg();
        let mut rng = StdRng::seed_from_u64(7);
        let target = vec![EdgeId(0), EdgeId(1)];
        let est = conditional_event_probability(
            &pg,
            &target,
            &[],
            EventKind::Embedding,
            &MonteCarloConfig::default(),
            &mut rng,
        );
        let exact = pg.prob_all_present(&target);
        assert!(
            (est - exact).abs() < 1e-9,
            "exact path should be taken: {est} vs {exact}"
        );
    }

    #[test]
    fn conditioning_on_disjoint_competitor_changes_nothing_for_independent_groups() {
        let pg = pg();
        let mut rng = StdRng::seed_from_u64(11);
        let target = vec![EdgeId(0)];
        let competitors = vec![vec![EdgeId(2), EdgeId(3)]];
        let got = conditional_event_probability(
            &pg,
            &target,
            &competitors,
            EventKind::Embedding,
            &MonteCarloConfig::default(),
            &mut rng,
        );
        // Edge 0 is independent of edges 2,3 (different tables), so the
        // conditional equals the marginal.
        let exact = pg.edge_presence_prob(EdgeId(0));
        assert!((got - exact).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_overlapping_competitor_lowers_embedding_probability() {
        let pg = pg();
        // Target {e0}; competitor {e0, e1}. Conditioned on "not (e0 and e1)",
        // the probability of e0 being present drops below its marginal.
        let target = vec![EdgeId(0)];
        let competitors = vec![vec![EdgeId(0), EdgeId(1)]];
        let exact =
            exact_conditional_event_probability(&pg, &target, &competitors, EventKind::Embedding)
                .unwrap();
        assert!(exact < pg.edge_presence_prob(EdgeId(0)));
        assert!(exact >= 0.0);
    }

    #[test]
    fn cut_events_use_absence() {
        let pg = pg();
        let target = vec![EdgeId(0)];
        let exact = exact_conditional_event_probability(&pg, &target, &[], EventKind::Cut).unwrap();
        assert!((exact - (1.0 - pg.edge_presence_prob(EdgeId(0)))).abs() < 1e-9);
    }

    #[test]
    fn sampled_matches_exact_on_moderate_instance() {
        let pg = pg();
        let mut rng = StdRng::seed_from_u64(23);
        let target = vec![EdgeId(1)];
        let competitors = vec![vec![EdgeId(0), EdgeId(1)], vec![EdgeId(1), EdgeId(2)]];
        let exact =
            exact_conditional_event_probability(&pg, &target, &competitors, EventKind::Embedding)
                .unwrap();
        // Force the sampling path by calling the sampler loop directly via a
        // large-relevant-edges workaround: here we just compare the public
        // function (exact path) with a manual sampling estimate.
        let config = MonteCarloConfig {
            tau: 0.05,
            xi: 0.01,
            max_samples: 60_000,
        };
        let n = config.num_samples();
        let mut n1 = 0usize;
        let mut n2 = 0usize;
        for _ in 0..n {
            let world = pg.sample_world(&mut rng);
            let competitor_hit = competitors.iter().any(|c| world_has_embedding(&world, c));
            if !competitor_hit {
                n2 += 1;
                if world_has_embedding(&world, &target) {
                    n1 += 1;
                }
            }
        }
        let sampled = n1 as f64 / n2 as f64;
        assert!(
            (sampled - exact).abs() < 0.03,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn projected_sampling_path_matches_exact_on_large_instance() {
        // 18 relevant edges: above the 16-edge exact shortcut (the projected
        // sampling path runs) but still small enough for the exact oracle.
        let m = 18usize;
        let g = {
            let mut b = GraphBuilder::new().vertices(&vec![0u32; m + 1]);
            for i in 0..m {
                b = b.edge(i as u32, i as u32 + 1, 0);
            }
            b.build()
        };
        let probs: Vec<f64> = (0..m).map(|i| 0.8 + 0.01 * (i % 10) as f64).collect();
        let pg = ProbabilisticGraph::independent(g, &probs).unwrap();
        let target: Vec<EdgeId> = (0..6).map(|i| EdgeId(i as u32)).collect();
        let competitors: Vec<EdgeSet> = vec![
            (4..12).map(|i| EdgeId(i as u32)).collect(),
            (10..18).map(|i| EdgeId(i as u32)).collect(),
        ];
        let exact =
            exact_conditional_event_probability(&pg, &target, &competitors, EventKind::Embedding)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let sampled = conditional_event_probability(
            &pg,
            &target,
            &competitors,
            EventKind::Embedding,
            &MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 60_000,
            },
            &mut rng,
        );
        assert!(
            (sampled - exact).abs() < 0.03,
            "sampled {sampled} vs exact {exact}"
        );
        // Same instance, cut events.
        let exact_cut =
            exact_conditional_event_probability(&pg, &target, &competitors, EventKind::Cut)
                .unwrap();
        let sampled_cut = conditional_event_probability(
            &pg,
            &target,
            &competitors,
            EventKind::Cut,
            &MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 60_000,
            },
            &mut rng,
        );
        assert!(
            (sampled_cut - exact_cut).abs() < 0.03,
            "sampled {sampled_cut} vs exact {exact_cut}"
        );
    }

    #[test]
    fn world_event_helpers() {
        let world = vec![true, false, true, false];
        assert!(world_has_embedding(&world, &[EdgeId(0), EdgeId(2)]));
        assert!(!world_has_embedding(&world, &[EdgeId(0), EdgeId(1)]));
        assert!(world_has_cut(&world, &[EdgeId(1), EdgeId(3)]));
        assert!(!world_has_cut(&world, &[EdgeId(0)]));
    }
}
