//! Monte-Carlo sampling configuration.
//!
//! The paper sets the cycling number of its samplers (Algorithms 3 and 5) to
//! `N = (4 ln(2/ξ)) / τ²` following standard Monte-Carlo estimation theory
//! \[26\]: with `N` samples the estimate is within a multiplicative `(1 ± τ)`
//! of the true value with probability at least `1 − ξ`.

/// Accuracy parameters of the Monte-Carlo estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Relative error `τ` (> 0).
    pub tau: f64,
    /// Failure probability `ξ` (in `(0, 1)`).
    pub xi: f64,
    /// Hard cap on the number of samples regardless of `τ`/`ξ` (0 = no cap).
    pub max_samples: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            tau: 0.1,
            xi: 0.05,
            max_samples: 100_000,
        }
    }
}

impl MonteCarloConfig {
    /// Creates a configuration with the given accuracy parameters.
    pub fn new(tau: f64, xi: f64) -> Self {
        MonteCarloConfig {
            tau,
            xi,
            ..Self::default()
        }
    }

    /// A fast, low-accuracy configuration for index construction, where the
    /// bounds only need to be roughly right to prune well.
    pub fn coarse() -> Self {
        MonteCarloConfig {
            tau: 0.25,
            xi: 0.1,
            max_samples: 4_000,
        }
    }

    /// The paper's cycling number `N = 4 ln(2/ξ) / τ²`, clamped by
    /// `max_samples` and to at least 16.
    pub fn num_samples(&self) -> usize {
        let tau = if self.tau > 0.0 { self.tau } else { 0.1 };
        let xi = self.xi.clamp(1e-9, 0.999_999);
        let n = (4.0 * (2.0 / xi).ln() / (tau * tau)).ceil();
        let n = if n.is_finite() && n > 0.0 {
            n as usize
        } else {
            16
        };
        let n = n.max(16);
        if self.max_samples > 0 {
            n.min(self.max_samples)
        } else {
            n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula() {
        let mc = MonteCarloConfig {
            tau: 0.1,
            xi: 0.05,
            max_samples: 0,
        };
        // 4 ln(40) / 0.01 ≈ 1475.6 → 1476
        assert_eq!(mc.num_samples(), 1476);
    }

    #[test]
    fn cap_and_floor() {
        let mc = MonteCarloConfig {
            tau: 0.01,
            xi: 0.01,
            max_samples: 5_000,
        };
        assert_eq!(mc.num_samples(), 5_000);
        let tiny = MonteCarloConfig {
            tau: 10.0,
            xi: 0.5,
            max_samples: 0,
        };
        assert_eq!(tiny.num_samples(), 16);
    }

    #[test]
    fn degenerate_parameters_do_not_panic() {
        let mc = MonteCarloConfig {
            tau: 0.0,
            xi: 0.0,
            max_samples: 100,
        };
        assert!(mc.num_samples() >= 16);
        assert!(mc.num_samples() <= 100);
    }

    #[test]
    fn coarse_is_smaller_than_default() {
        assert!(
            MonteCarloConfig::coarse().num_samples() <= MonteCarloConfig::default().num_samples()
        );
    }
}
