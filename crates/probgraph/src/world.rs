//! Possible-world enumeration (Definition 3).
//!
//! Only used for small graphs: the number of worlds is `2^|E|`.  The exact
//! baselines and several test oracles enumerate either all worlds or all
//! assignments of a *restricted* edge set (everything outside the restriction
//! is marginalised away, which is sound because the queried events only depend
//! on the restricted edges).

use crate::error::ProbError;
use crate::model::ProbabilisticGraph;
use pgs_graph::model::EdgeId;

/// Default limit on the number of binary variables enumerated exactly.
pub const DEFAULT_ENUMERATION_LIMIT: usize = 22;

/// A fully specified possible world.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// Presence bitmap over all edges of the skeleton.
    pub present: Vec<bool>,
    /// Probability of this world (Equation 1).
    pub probability: f64,
}

/// Enumerates every possible world of `pg`.
///
/// Fails with [`ProbError::TooManyWorlds`] when the skeleton has more than
/// `limit` edges (use [`enumerate_assignments_over`] with a restricted edge set
/// instead).
pub fn enumerate_worlds(
    pg: &ProbabilisticGraph,
    limit: usize,
) -> Result<Vec<PossibleWorld>, ProbError> {
    let m = pg.edge_count();
    if m > limit {
        return Err(ProbError::TooManyWorlds {
            variables: m,
            limit,
        });
    }
    let mut worlds = Vec::with_capacity(1 << m);
    for mask in 0u64..(1u64 << m) {
        let present: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        let probability = pg.world_probability(&present);
        worlds.push(PossibleWorld {
            present,
            probability,
        });
    }
    Ok(worlds)
}

/// One partial world: an assignment of the restricted edges plus its marginal
/// probability (all other edges summed out).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialWorld {
    /// The restricted edges, in the order supplied to the enumeration call.
    pub edges: Vec<EdgeId>,
    /// `present[i]` is the assignment of `edges[i]`.
    pub present: Vec<bool>,
    /// Marginal probability of this assignment.
    pub probability: f64,
}

impl PartialWorld {
    /// True if the given edge is present in this partial world (false if the
    /// edge is not part of the restriction).
    pub fn is_present(&self, e: EdgeId) -> bool {
        self.edges
            .iter()
            .position(|&x| x == e)
            .map(|i| self.present[i])
            .unwrap_or(false)
    }
}

/// Enumerates all assignments of the given restricted edge set with their
/// marginal probabilities.  The probabilities sum to 1.
pub fn enumerate_assignments_over(
    pg: &ProbabilisticGraph,
    edges: &[EdgeId],
    limit: usize,
) -> Result<Vec<PartialWorld>, ProbError> {
    let k = edges.len();
    if k > limit {
        return Err(ProbError::TooManyWorlds {
            variables: k,
            limit,
        });
    }
    let mut out = Vec::with_capacity(1 << k);
    for mask in 0u64..(1u64 << k) {
        let present: Vec<bool> = (0..k).map(|i| mask & (1 << i) != 0).collect();
        let assignment: Vec<(EdgeId, bool)> = edges
            .iter()
            .zip(present.iter())
            .map(|(&e, &p)| (e, p))
            .collect();
        let probability = pg.prob_of_assignment(&assignment);
        out.push(PartialWorld {
            edges: edges.to_vec(),
            present,
            probability,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpt::JointProbTable;
    use pgs_graph::model::GraphBuilder;

    fn small_pg() -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let t = JointProbTable::new(
            vec![EdgeId(0), EdgeId(1)],
            vec![0.1, 0.2, 0.3, 0.4], // P(00)=0.1 P(10)=0.2 P(01)=0.3 P(11)=0.4
        )
        .unwrap();
        ProbabilisticGraph::new(g, vec![t], true).unwrap()
    }

    #[test]
    fn enumeration_matches_table() {
        let pg = small_pg();
        let worlds = enumerate_worlds(&pg, DEFAULT_ENUMERATION_LIMIT).unwrap();
        assert_eq!(worlds.len(), 4);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let full = worlds
            .iter()
            .find(|w| w.present.iter().all(|&p| p))
            .unwrap();
        assert!((full.probability - 0.4).abs() < 1e-12);
        let empty = worlds
            .iter()
            .find(|w| w.present.iter().all(|&p| !p))
            .unwrap();
        assert!((empty.probability - 0.1).abs() < 1e-12);
    }

    #[test]
    fn enumeration_limit_is_enforced() {
        let pg = small_pg();
        assert!(matches!(
            enumerate_worlds(&pg, 1).unwrap_err(),
            ProbError::TooManyWorlds {
                variables: 2,
                limit: 1
            }
        ));
    }

    #[test]
    fn restricted_enumeration_marginalises_the_rest() {
        let pg = small_pg();
        let partials = enumerate_assignments_over(&pg, &[EdgeId(0)], 8).unwrap();
        assert_eq!(partials.len(), 2);
        let total: f64 = partials.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let present = partials.iter().find(|w| w.present[0]).unwrap();
        // P(e0=1) = P(10)+P(11) = 0.2+0.4
        assert!((present.probability - 0.6).abs() < 1e-12);
        assert!(present.is_present(EdgeId(0)));
        assert!(!present.is_present(EdgeId(1)));
    }

    #[test]
    fn empty_restriction_is_single_world_of_probability_one() {
        let pg = small_pg();
        let partials = enumerate_assignments_over(&pg, &[], 8).unwrap();
        assert_eq!(partials.len(), 1);
        assert!((partials[0].probability - 1.0).abs() < 1e-12);
    }
}
