//! Possible-world sampling utilities.
//!
//! Thin wrappers around [`ProbabilisticGraph::sample_world`] used by the
//! conditional estimator (Algorithm 3), the verification sampler (Algorithm 5)
//! and by quality experiments that need empirical event frequencies.

use crate::model::ProbabilisticGraph;
use crate::montecarlo::MonteCarloConfig;
use crate::union_sampler::{mask_covered, ProjectedWorlds};
use pgs_graph::model::EdgeId;
use rand::Rng;

/// Samples `n` worlds and returns the fraction in which `event` holds.
///
/// The loop reuses one world buffer across all trials
/// ([`ProbabilisticGraph::sample_world_into`]); the closure sees each trial's
/// presence bitmap in turn.
pub fn estimate_event_probability<R, F>(
    pg: &ProbabilisticGraph,
    config: &MonteCarloConfig,
    rng: &mut R,
    mut event: F,
) -> f64
where
    R: Rng + ?Sized,
    F: FnMut(&[bool]) -> bool,
{
    let n = config.num_samples();
    let mut hits = 0usize;
    let mut world = Vec::with_capacity(pg.edge_count());
    for _ in 0..n {
        pg.sample_world_into(rng, &mut world);
        if event(&world) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Returns true if every edge of `edges` is present in the world bitmap.
pub fn all_present(world: &[bool], edges: &[EdgeId]) -> bool {
    edges.iter().all(|e| world[e.index()])
}

/// Returns true if every edge of `edges` is absent in the world bitmap.
pub fn all_absent(world: &[bool], edges: &[EdgeId]) -> bool {
    edges.iter().all(|e| !world[e.index()])
}

/// Estimates the probability that all of `edges` are present by sampling
/// (exact computation is available via
/// [`ProbabilisticGraph::prob_all_present`]; this is used to cross-check the
/// samplers in tests and benchmarks).
///
/// Uses the projected bitset-world representation: only the tables touched by
/// `edges` are sampled and the event check is a word-wise mask compare.
pub fn estimate_all_present<R: Rng + ?Sized>(
    pg: &ProbabilisticGraph,
    edges: &[EdgeId],
    config: &MonteCarloConfig,
    rng: &mut R,
) -> f64 {
    let projection = ProjectedWorlds::new(pg, edges);
    let mask = projection.mask_of(edges);
    let mut scratch = vec![0u64; projection.words()];
    let n = config.num_samples();
    let mut hits = 0usize;
    for _ in 0..n {
        projection.sample_into(rng, &mut scratch);
        if mask_covered(&scratch, &mask) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpt::JointProbTable;
    use pgs_graph::model::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pg() -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let t = JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.4)]).unwrap();
        ProbabilisticGraph::new(g, vec![t], true).unwrap()
    }

    #[test]
    fn estimated_probabilities_converge_to_exact() {
        let pg = pg();
        let mut rng = StdRng::seed_from_u64(5);
        let config = MonteCarloConfig {
            tau: 0.05,
            xi: 0.01,
            max_samples: 50_000,
        };
        let est = estimate_all_present(&pg, &[EdgeId(0), EdgeId(1)], &config, &mut rng);
        let exact = pg.prob_all_present(&[EdgeId(0), EdgeId(1)]);
        assert!(
            (est - exact).abs() < 0.02,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn event_helpers() {
        let world = vec![true, false, true];
        assert!(all_present(&world, &[EdgeId(0), EdgeId(2)]));
        assert!(!all_present(&world, &[EdgeId(0), EdgeId(1)]));
        assert!(all_absent(&world, &[EdgeId(1)]));
        assert!(!all_absent(&world, &[EdgeId(0)]));
        assert!(all_present(&world, &[]));
        assert!(all_absent(&world, &[]));
    }

    #[test]
    fn custom_event_estimation() {
        let pg = pg();
        let mut rng = StdRng::seed_from_u64(17);
        let config = MonteCarloConfig::default();
        // Event: at least one edge present. Exact = 1 - P(both absent).
        let est = estimate_event_probability(&pg, &config, &mut rng, |w| w.iter().any(|&p| p));
        let exact = 1.0 - pg.prob_all_absent(&[EdgeId(0), EdgeId(1)]);
        assert!((est - exact).abs() < 0.05);
    }
}
