//! Walker–Vose alias tables: O(1) sampling from a fixed discrete distribution.
//!
//! The verification sampler (Algorithm 5) repeatedly draws an embedding with
//! probability `Pr(Bf_i) / V` and then one row per JPT; both distributions are
//! fixed for the whole sample loop, so the linear scans the naive sampler pays
//! per draw can be replaced by a table built once.  A Walker alias table
//! answers each draw with a single uniform variate and two array lookups,
//! independent of the number of outcomes.

use rand::Rng;

/// A Walker alias table over the outcomes `0..n`.
///
/// Built once from a slice of non-negative weights (not necessarily
/// normalised); each [`AliasTable::sample`] costs one `f64` draw and O(1)
/// work.  Zero-weight outcomes are never returned as long as the total weight
/// is positive.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance threshold of each bucket (the scaled weight share kept by
    /// the bucket's own outcome).
    prob: Vec<f64>,
    /// The donor outcome a rejected draw falls through to.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// Returns `None` when the slice is empty, any weight is negative or
    /// non-finite, or the total weight is not strictly positive — a
    /// distribution cannot be formed in any of those cases.
    pub fn new(weights: &[f64]) -> Option<AliasTable> {
        let n = weights.len();
        if n == 0 || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || total.is_nan() {
            return None;
        }
        // Scale so the average bucket holds exactly weight 1, then repeatedly
        // top up an under-full bucket from an over-full one (Vose's method).
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (in either stack) are exactly-full up to rounding.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never the case for a constructed
    /// table; present for the conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome: a single uniform variate selects the bucket and the
    /// accept/alias branch.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let u: f64 = rng.gen::<f64>() * n as f64;
        let mut i = u as usize;
        if i >= n {
            // Only reachable through floating-point rounding at u ≈ n.
            i = n - 1;
        }
        if u - (i as f64) < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.1]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY, 1.0]).is_none());
    }

    #[test]
    fn singleton_always_returns_zero() {
        let t = AliasTable::new(&[0.7]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [0.1, 0.4, 0.2, 0.3];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let f = counts[i] as f64 / n as f64;
            assert!((f - w).abs() < 0.01, "outcome {i}: {f} vs weight {w}");
        }
    }

    #[test]
    fn unnormalised_weights_are_rescaled() {
        let a = AliasTable::new(&[1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| a.sample(&mut rng) == 1).count();
        assert!((hits as f64 / n as f64 - 0.75).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcomes_are_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50_000 {
            let x = t.sample(&mut rng);
            assert!(x == 1 || x == 3, "drew zero-weight outcome {x}");
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let t = AliasTable::new(&[0.2, 0.5, 0.3]).unwrap();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|_| t.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
