//! Error type for the probabilistic layer.

use pgs_graph::model::EdgeId;
use std::fmt;

/// Errors produced while constructing probabilistic graphs and JPTs.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A probability was negative, NaN or above one.
    InvalidProbability(f64),
    /// A joint probability table's entries do not sum to 1 (beyond tolerance).
    NotNormalized {
        /// The observed sum of the table entries.
        sum: f64,
    },
    /// The table row count does not match `2^arity`.
    WrongTableSize {
        /// Number of variables in the table.
        arity: usize,
        /// Number of rows supplied.
        rows: usize,
    },
    /// A JPT with no variables was supplied.
    EmptyTable,
    /// A JPT references an edge that is not in the skeleton.
    UnknownEdge(EdgeId),
    /// An edge appears in more than one neighbor-edge group.
    OverlappingGroups(EdgeId),
    /// An edge of the skeleton is not covered by any group.
    UncoveredEdge(EdgeId),
    /// A group is not a neighbor-edge set (edges neither share a vertex nor
    /// form a triangle).
    NotNeighborEdges {
        /// Index of the offending group.
        group: usize,
    },
    /// The requested exact computation would enumerate too many assignments.
    TooManyWorlds {
        /// Number of binary variables that would have to be enumerated.
        variables: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A table has more variables than the supported maximum (bitmask width).
    ArityTooLarge(usize),
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidProbability(p) => write!(f, "invalid probability {p}"),
            ProbError::NotNormalized { sum } => {
                write!(f, "joint probability table sums to {sum}, expected 1")
            }
            ProbError::WrongTableSize { arity, rows } => write!(
                f,
                "joint probability table over {arity} variables needs {} rows, got {rows}",
                1usize << arity
            ),
            ProbError::EmptyTable => write!(f, "joint probability table has no variables"),
            ProbError::UnknownEdge(e) => write!(f, "table references unknown edge {e}"),
            ProbError::OverlappingGroups(e) => {
                write!(f, "edge {e} appears in more than one neighbor-edge group")
            }
            ProbError::UncoveredEdge(e) => {
                write!(f, "edge {e} is not covered by any neighbor-edge group")
            }
            ProbError::NotNeighborEdges { group } => {
                write!(f, "group {group} is not a neighbor-edge set")
            }
            ProbError::TooManyWorlds { variables, limit } => write!(
                f,
                "exact enumeration over {variables} edges exceeds the limit of {limit}"
            ),
            ProbError::ArityTooLarge(a) => {
                write!(
                    f,
                    "joint probability table arity {a} exceeds the supported maximum"
                )
            }
        }
    }
}

impl std::error::Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ProbError::InvalidProbability(-0.5)
            .to_string()
            .contains("-0.5"));
        assert!(ProbError::NotNormalized { sum: 0.9 }
            .to_string()
            .contains("0.9"));
        assert!(ProbError::WrongTableSize { arity: 3, rows: 7 }
            .to_string()
            .contains("8 rows"));
        assert!(ProbError::UnknownEdge(EdgeId(4)).to_string().contains("e4"));
        assert!(ProbError::TooManyWorlds {
            variables: 40,
            limit: 24
        }
        .to_string()
        .contains("40"));
    }
}
