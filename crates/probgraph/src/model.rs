//! The probabilistic graph: skeleton + joint probability tables.
//!
//! Definition 2: `g = (gc, X_E)` where `gc` is a deterministic graph and a
//! joint density is assigned to every neighbor-edge set.  Here the
//! neighbor-edge sets must partition the edge set (see the crate-level docs for
//! the rationale), so a possible world's probability is the product of one row
//! per table (Equation 1) and worlds are sampled by sampling each table
//! independently — exactly what Algorithm 3 does.

use crate::error::ProbError;
use crate::jpt::JointProbTable;
use crate::neighbor::is_neighbor_edge_set;
use pgs_graph::model::{EdgeId, Graph};
use rand::Rng;

/// A probabilistic graph: a deterministic skeleton plus one JPT per
/// neighbor-edge group, the groups forming a partition of the edge set.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilisticGraph {
    skeleton: Graph,
    tables: Vec<JointProbTable>,
    /// For every edge, the index of the table that owns it.
    edge_to_table: Vec<usize>,
}

impl ProbabilisticGraph {
    /// Creates a probabilistic graph, validating that the tables' variables
    /// partition the skeleton's edge set.
    ///
    /// Set `check_neighborhood` to also enforce that every group is a genuine
    /// neighbor-edge set (edges sharing a vertex or forming a triangle); the
    /// data generator always produces such groups, but externally supplied
    /// models may want to opt out (the probabilistic semantics do not require
    /// it).
    pub fn new(
        skeleton: Graph,
        tables: Vec<JointProbTable>,
        check_neighborhood: bool,
    ) -> Result<Self, ProbError> {
        let m = skeleton.edge_count();
        let mut edge_to_table = vec![usize::MAX; m];
        for (ti, table) in tables.iter().enumerate() {
            if check_neighborhood && !is_neighbor_edge_set(&skeleton, table.edges()) {
                return Err(ProbError::NotNeighborEdges { group: ti });
            }
            for &e in table.edges() {
                if e.index() >= m {
                    return Err(ProbError::UnknownEdge(e));
                }
                if edge_to_table[e.index()] != usize::MAX {
                    return Err(ProbError::OverlappingGroups(e));
                }
                edge_to_table[e.index()] = ti;
            }
        }
        if let Some(idx) = edge_to_table.iter().position(|&t| t == usize::MAX) {
            return Err(ProbError::UncoveredEdge(EdgeId(idx as u32)));
        }
        Ok(ProbabilisticGraph {
            skeleton,
            tables,
            edge_to_table,
        })
    }

    /// Convenience constructor: independent edges with the given presence
    /// probabilities (one probability per edge, in edge-id order), each edge in
    /// its own singleton table.  This is the classical uncorrelated model used
    /// by prior work and by the `IND` baseline.
    pub fn independent(skeleton: Graph, edge_probs: &[f64]) -> Result<Self, ProbError> {
        if edge_probs.len() != skeleton.edge_count() {
            return Err(ProbError::WrongTableSize {
                arity: skeleton.edge_count(),
                rows: edge_probs.len(),
            });
        }
        let tables: Result<Vec<_>, _> = edge_probs
            .iter()
            .enumerate()
            .map(|(i, &p)| JointProbTable::independent(&[(EdgeId(i as u32), p)]))
            .collect();
        Self::new(skeleton, tables?, false)
    }

    /// The deterministic skeleton `gc` (all uncertainty removed).
    pub fn skeleton(&self) -> &Graph {
        &self.skeleton
    }

    /// The joint probability tables.
    pub fn tables(&self) -> &[JointProbTable] {
        &self.tables
    }

    /// Name of the underlying skeleton graph.
    pub fn name(&self) -> &str {
        self.skeleton.name()
    }

    /// Number of edges of the skeleton.
    pub fn edge_count(&self) -> usize {
        self.skeleton.edge_count()
    }

    /// Number of vertices of the skeleton.
    pub fn vertex_count(&self) -> usize {
        self.skeleton.vertex_count()
    }

    /// Index of the table owning `edge`.
    pub fn table_of(&self, edge: EdgeId) -> &JointProbTable {
        &self.tables[self.edge_to_table[edge.index()]]
    }

    /// Marginal presence probability of a single edge.
    pub fn edge_presence_prob(&self, edge: EdgeId) -> f64 {
        self.table_of(edge).edge_marginal(edge)
    }

    /// Expected number of edges in a possible world.
    pub fn expected_edge_count(&self) -> f64 {
        self.skeleton
            .edges()
            .map(|e| self.edge_presence_prob(e))
            .sum()
    }

    /// Probability of a partial assignment `(edge, present)` (edges not
    /// mentioned are marginalised out).  With partitioned tables this is the
    /// product of per-table marginals — the exact quantity the paper computes
    /// with a junction tree over its factor decomposition.
    pub fn prob_of_assignment(&self, assignment: &[(EdgeId, bool)]) -> f64 {
        let mut per_table: Vec<Vec<(EdgeId, bool)>> = vec![Vec::new(); self.tables.len()];
        for &(e, present) in assignment {
            if e.index() >= self.edge_count() {
                return 0.0;
            }
            per_table[self.edge_to_table[e.index()]].push((e, present));
        }
        per_table
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(ti, c)| self.tables[ti].marginal(c))
            .product()
    }

    /// Probability that all the given edges are simultaneously present.
    pub fn prob_all_present(&self, edges: &[EdgeId]) -> f64 {
        let assignment: Vec<(EdgeId, bool)> = edges.iter().map(|&e| (e, true)).collect();
        self.prob_of_assignment(&assignment)
    }

    /// Probability that all the given edges are simultaneously absent.
    pub fn prob_all_absent(&self, edges: &[EdgeId]) -> f64 {
        let assignment: Vec<(EdgeId, bool)> = edges.iter().map(|&e| (e, false)).collect();
        self.prob_of_assignment(&assignment)
    }

    /// Probability of one fully specified possible world given as a presence
    /// bitmap over all edges (Equation 1).
    pub fn world_probability(&self, present: &[bool]) -> f64 {
        assert_eq!(
            present.len(),
            self.edge_count(),
            "presence bitmap size mismatch"
        );
        let assignment: Vec<(EdgeId, bool)> = present
            .iter()
            .enumerate()
            .map(|(i, &p)| (EdgeId(i as u32), p))
            .collect();
        self.prob_of_assignment(&assignment)
    }

    /// Samples a possible world as a presence bitmap over all edges.
    pub fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        let mut present = Vec::new();
        self.sample_world_into(rng, &mut present);
        present
    }

    /// Samples a possible world into a caller-owned presence bitmap, resizing
    /// it to the edge count.  Repeated-sampling loops (Algorithms 3 and 5, the
    /// empirical event estimators) reuse one buffer instead of allocating a
    /// fresh `Vec<bool>` per trial.
    pub fn sample_world_into<R: Rng + ?Sized>(&self, rng: &mut R, present: &mut Vec<bool>) {
        present.clear();
        present.resize(self.edge_count(), false);
        for table in &self.tables {
            let mask = table.sample_mask(rng);
            for (bit, &e) in table.edges().iter().enumerate() {
                present[e.index()] = mask & (1 << bit) != 0;
            }
        }
    }

    /// Samples a possible world conditioned on a partial assignment (used by
    /// the verification sampler of Algorithm 5, which samples worlds given that
    /// a specific embedding is present).
    pub fn sample_world_conditioned<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        constraint: &[(EdgeId, bool)],
    ) -> Vec<bool> {
        let mut present = vec![false; self.edge_count()];
        for table in &self.tables {
            let mask = table.sample_mask_conditioned(rng, constraint);
            for (bit, &e) in table.edges().iter().enumerate() {
                present[e.index()] = mask & (1 << bit) != 0;
            }
        }
        present
    }

    /// Index of the table owning `edge` (tables are returned by
    /// [`ProbabilisticGraph::tables`] in this order).
    pub fn table_index_of(&self, edge: EdgeId) -> usize {
        self.edge_to_table[edge.index()]
    }

    /// The set of table indices touched by the given edges (sorted, deduped).
    /// Two edge sets touching disjoint table sets are independent under the
    /// partitioned model — the index uses this to pick provably independent
    /// embeddings/cuts for its bounds.
    pub fn tables_touched(&self, edges: &[EdgeId]) -> Vec<usize> {
        let mut t: Vec<usize> = edges.iter().map(|&e| self.table_index_of(e)).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Materialises the deterministic graph of a sampled world (all vertices,
    /// only the present edges) — Definition 3.
    pub fn world_graph(&self, present: &[bool]) -> Graph {
        let keep: Vec<EdgeId> = self
            .skeleton
            .edges()
            .filter(|e| present[e.index()])
            .collect();
        self.skeleton.edge_subgraph(&keep)
    }

    /// Average edge presence probability (dataset statistic reported by the
    /// paper: 0.383 for STRING).
    pub fn mean_edge_probability(&self) -> f64 {
        if self.edge_count() == 0 {
            return 0.0;
        }
        self.expected_edge_count() / self.edge_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::{GraphBuilder, Label, VertexId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Graph 002 of Figure 1 with its two JPTs.
    ///
    /// The paper's JPT1 covers {e1,e2,e3} and JPT2 covers {e3,e4,e5} (they
    /// share e3, i.e. the groups overlap); our model requires a partition, so
    /// the canonical test fixture assigns the triangle {e0,e1,e2} to one table
    /// and the two pendant edges {e3,e4} to another (both neighbor-edge sets).
    pub(crate) fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9) // e0 (paper e1)
            .edge(0, 2, 9) // e1 (paper e2)
            .edge(1, 2, 9) // e2 (paper e3)
            .edge(2, 3, 9) // e3 (paper e4)
            .edge(2, 4, 9) // e4 (paper e5)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    #[test]
    fn construction_validates_partition() {
        let g = GraphBuilder::new()
            .vertices(&[0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        // Missing edge 1.
        let t = JointProbTable::independent(&[(EdgeId(0), 0.5)]).unwrap();
        assert_eq!(
            ProbabilisticGraph::new(g.clone(), vec![t.clone()], false).unwrap_err(),
            ProbError::UncoveredEdge(EdgeId(1))
        );
        // Edge appearing twice.
        let t2 = JointProbTable::independent(&[(EdgeId(0), 0.5), (EdgeId(1), 0.5)]).unwrap();
        assert_eq!(
            ProbabilisticGraph::new(g.clone(), vec![t.clone(), t2.clone()], false).unwrap_err(),
            ProbError::OverlappingGroups(EdgeId(0))
        );
        // Unknown edge.
        let t3 = JointProbTable::independent(&[(EdgeId(7), 0.5)]).unwrap();
        assert_eq!(
            ProbabilisticGraph::new(g.clone(), vec![t2.clone(), t3], false).unwrap_err(),
            ProbError::UnknownEdge(EdgeId(7))
        );
        // Valid partition.
        let t_ok = JointProbTable::independent(&[(EdgeId(1), 0.25)]).unwrap();
        assert!(ProbabilisticGraph::new(g, vec![t, t_ok], true).is_ok());
    }

    #[test]
    fn neighborhood_check_rejects_far_apart_edges() {
        // Path of 3 edges: e0 and e2 share no vertex, grouping them is invalid.
        let g = GraphBuilder::new()
            .vertices(&[0, 0, 0, 0])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .edge(2, 3, 0)
            .build();
        let bad = JointProbTable::independent(&[(EdgeId(0), 0.5), (EdgeId(2), 0.5)]).unwrap();
        let mid = JointProbTable::independent(&[(EdgeId(1), 0.5)]).unwrap();
        let err =
            ProbabilisticGraph::new(g.clone(), vec![bad.clone(), mid.clone()], true).unwrap_err();
        assert_eq!(err, ProbError::NotNeighborEdges { group: 0 });
        // Without the neighborhood check the same grouping is accepted.
        assert!(ProbabilisticGraph::new(g, vec![bad, mid], false).is_ok());
    }

    #[test]
    fn independent_constructor() {
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let pg = ProbabilisticGraph::independent(g, &[0.25, 0.75]).unwrap();
        assert!((pg.edge_presence_prob(EdgeId(0)) - 0.25).abs() < 1e-12);
        assert!((pg.edge_presence_prob(EdgeId(1)) - 0.75).abs() < 1e-12);
        assert!((pg.expected_edge_count() - 1.0).abs() < 1e-12);
        assert!((pg.prob_all_present(&[EdgeId(0), EdgeId(1)]) - 0.1875).abs() < 1e-12);
        assert!((pg.mean_edge_probability() - 0.5).abs() < 1e-12);

        let g2 = GraphBuilder::new().vertices(&[0, 1]).edge(0, 1, 0).build();
        assert!(ProbabilisticGraph::independent(g2, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let pg = fixture_002();
        let m = pg.edge_count();
        let mut total = 0.0;
        for mask in 0u32..(1 << m) {
            let present: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
            total += pg.world_probability(&present);
        }
        assert!(
            (total - 1.0).abs() < 1e-9,
            "world probabilities sum to {total}"
        );
    }

    #[test]
    fn assignment_probability_factorises_over_tables() {
        let pg = fixture_002();
        // Edges 0 and 3 live in different tables, so the joint factors.
        let joint = pg.prob_of_assignment(&[(EdgeId(0), true), (EdgeId(3), true)]);
        let product = pg.edge_presence_prob(EdgeId(0)) * pg.edge_presence_prob(EdgeId(3));
        assert!((joint - product).abs() < 1e-12);
        // Edges 0 and 2 share a table under the max rule: correlated, so the
        // joint differs from the product of the marginals.
        let joint_same = pg.prob_of_assignment(&[(EdgeId(0), true), (EdgeId(2), true)]);
        let product_same = pg.edge_presence_prob(EdgeId(0)) * pg.edge_presence_prob(EdgeId(2));
        assert!((joint_same - product_same).abs() > 1e-6);
        // Out-of-range edge yields probability zero.
        assert_eq!(pg.prob_of_assignment(&[(EdgeId(99), true)]), 0.0);
    }

    #[test]
    fn sampled_world_frequencies_match_model() {
        let pg = fixture_002();
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 30_000;
        let mut count_e0 = 0usize;
        let mut count_both = 0usize;
        for _ in 0..n {
            let w = pg.sample_world(&mut rng);
            if w[0] {
                count_e0 += 1;
            }
            if w[0] && w[3] {
                count_both += 1;
            }
        }
        let f0 = count_e0 as f64 / n as f64;
        let fboth = count_both as f64 / n as f64;
        assert!((f0 - pg.edge_presence_prob(EdgeId(0))).abs() < 0.02);
        let expected_both = pg.edge_presence_prob(EdgeId(0)) * pg.edge_presence_prob(EdgeId(3));
        assert!((fboth - expected_both).abs() < 0.02);
    }

    #[test]
    fn world_graph_keeps_all_vertices() {
        let pg = fixture_002();
        let present = vec![true, false, true, false, false];
        let wg = pg.world_graph(&present);
        assert_eq!(wg.vertex_count(), 5);
        assert_eq!(wg.edge_count(), 2);
        assert_eq!(wg.vertex_label(VertexId(4)), Label(2));
    }
}
