//! The independent-edge model (`IND` baseline of Figure 14).
//!
//! Prior work on uncertain graphs assumes edges exist independently of each
//! other.  The paper's Figure 14 compares query quality under the correlated
//! model (`COR`) against that classical model (`IND`), obtained by replacing
//! every joint probability table with the product of its single-edge marginals
//! ("we multiply probabilities of edges in each neighbor edge set to obtain
//! joint probability tables", Section 6).

use crate::model::ProbabilisticGraph;

/// Builds the independent-edge counterpart of `pg`: the same skeleton and the
/// same neighbor-edge grouping, but every table replaced by the product of its
/// single-edge marginals.  Single-edge marginals are preserved exactly; all
/// intra-group correlation is discarded.
pub fn to_independent_model(pg: &ProbabilisticGraph) -> ProbabilisticGraph {
    let tables = pg.tables().iter().map(|t| t.to_independent()).collect();
    ProbabilisticGraph::new(pg.skeleton().clone(), tables, false)
        // pgs-lint: allow(panic-in-library, marginals of a validated model stay valid probabilities)
        .expect("independent counterpart of a valid model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_ssp;
    use crate::jpt::JointProbTable;
    use pgs_graph::model::{EdgeId, GraphBuilder};

    fn correlated_pg() -> ProbabilisticGraph {
        let g = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        // Strongly correlated: both edges present or both absent.
        let t = JointProbTable::new(vec![EdgeId(0), EdgeId(1)], vec![0.4, 0.0, 0.0, 0.6]).unwrap();
        ProbabilisticGraph::new(g, vec![t], true).unwrap()
    }

    #[test]
    fn marginals_are_preserved() {
        let cor = correlated_pg();
        let ind = to_independent_model(&cor);
        for e in [EdgeId(0), EdgeId(1)] {
            assert!((cor.edge_presence_prob(e) - ind.edge_presence_prob(e)).abs() < 1e-9);
        }
        assert_eq!(cor.skeleton(), ind.skeleton());
        assert_eq!(cor.tables().len(), ind.tables().len());
    }

    #[test]
    fn correlation_is_removed() {
        let cor = correlated_pg();
        let ind = to_independent_model(&cor);
        let both = [EdgeId(0), EdgeId(1)];
        let cor_joint = cor.prob_all_present(&both);
        let ind_joint = ind.prob_all_present(&both);
        assert!((cor_joint - 0.6).abs() < 1e-9);
        assert!((ind_joint - 0.36).abs() < 1e-9);
    }

    #[test]
    fn query_probabilities_differ_between_models() {
        // The two-edge path query needs both edges, so correlation matters: the
        // correlated model gives 0.6, the independent model only 0.36. This is
        // the mechanism behind the COR-vs-IND quality gap of Figure 14.
        let cor = correlated_pg();
        let ind = to_independent_model(&cor);
        let q = GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 0)
            .edge(1, 2, 0)
            .build();
        let p_cor = exact_ssp(&cor, &q, 0, 20).unwrap();
        let p_ind = exact_ssp(&ind, &q, 0, 20).unwrap();
        assert!((p_cor - 0.6).abs() < 1e-9);
        assert!((p_ind - 0.36).abs() < 1e-9);
        assert!(p_cor > p_ind);
    }

    #[test]
    fn independent_model_is_idempotent() {
        let cor = correlated_pg();
        let ind = to_independent_model(&cor);
        let ind2 = to_independent_model(&ind);
        for e in [EdgeId(0), EdgeId(1)] {
            assert!((ind.edge_presence_prob(e) - ind2.edge_presence_prob(e)).abs() < 1e-12);
        }
        assert!(
            (ind.prob_all_present(&[EdgeId(0), EdgeId(1)])
                - ind2.prob_all_present(&[EdgeId(0), EdgeId(1)]))
            .abs()
                < 1e-12
        );
    }
}
