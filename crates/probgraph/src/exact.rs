//! Exact subgraph-isomorphism / similarity probabilities.
//!
//! These are the `Exact` baselines of the evaluation (Figures 9 and 13) and the
//! oracles the test-suite checks every bound and sampler against.  Exact
//! computation is #P-complete in general (Theorem 2); the implementations here
//! therefore enumerate assignments only over the *relevant* edges — the union
//! of the embedding edge sets the event actually depends on — which keeps the
//! cost at `2^{|relevant|}` and makes the oracle usable for the paper's query
//! sizes on skeleton neighbourhoods, while still being exponential in the worst
//! case (as the paper's own Exact baseline is).

use crate::error::ProbError;
use crate::model::ProbabilisticGraph;
use crate::world::{enumerate_assignments_over, enumerate_worlds};
use pgs_graph::embeddings::EdgeSet;
use pgs_graph::mcs::subgraph_similar;
use pgs_graph::model::{EdgeId, Graph};
use pgs_graph::relax::relax_query;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};

/// Default cap on the number of relevant edges enumerated exactly.
pub const DEFAULT_EXACT_LIMIT: usize = 22;

/// Probability of a partial assignment under the model — re-exported helper
/// (product of per-table marginals; exact thanks to the partitioned tables).
pub fn prob_of_partial_assignment(pg: &ProbabilisticGraph, assignment: &[(EdgeId, bool)]) -> f64 {
    pg.prob_of_assignment(assignment)
}

/// Exact subgraph-isomorphism probability `Pr(f ⊆iso g)` (Definition 6) given
/// the embeddings of `f` in `gc`: the probability that at least one embedding
/// has all of its edges present (Equation 10).
pub fn exact_sip(pg: &ProbabilisticGraph, embeddings: &[EdgeSet]) -> Result<f64, ProbError> {
    exact_union_probability(pg, embeddings, DEFAULT_EXACT_LIMIT)
}

/// Probability that at least one of the given edge sets is fully present.
pub fn exact_union_probability(
    pg: &ProbabilisticGraph,
    edge_sets: &[EdgeSet],
    limit: usize,
) -> Result<f64, ProbError> {
    if edge_sets.is_empty() {
        return Ok(0.0);
    }
    if edge_sets.iter().any(|s| s.is_empty()) {
        // The empty pattern is contained in every world.
        return Ok(1.0);
    }
    let mut relevant: Vec<EdgeId> = edge_sets.iter().flatten().copied().collect();
    relevant.sort_unstable();
    relevant.dedup();
    let assignments = enumerate_assignments_over(pg, &relevant, limit)?;
    let mut p = 0.0;
    for a in &assignments {
        let hit = edge_sets.iter().any(|s| s.iter().all(|&e| a.is_present(e)));
        if hit {
            p += a.probability;
        }
    }
    Ok(p.clamp(0.0, 1.0))
}

/// Exact subgraph similarity probability `Pr(q ⊆sim g)` (Definition 9) for a
/// query `q` and distance threshold `delta`, computed through Lemma 1: the
/// probability that at least one relaxed query `rq ∈ U` embeds in the world.
///
/// `limit` bounds the number of relevant edges enumerated; `max_embeddings`
/// bounds the embeddings enumerated per relaxed query (`0` = default).
pub fn exact_ssp(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    limit: usize,
) -> Result<f64, ProbError> {
    if q.edge_count() <= delta {
        // Relaxing q by delta edges leaves the empty pattern: every world matches.
        return Ok(1.0);
    }
    let relaxed = relax_query(q, delta);
    let mut all_embeddings: Vec<EdgeSet> = Vec::new();
    for rq in &relaxed {
        let outcome = enumerate_embeddings(rq, pg.skeleton(), MatchOptions::default());
        for emb in outcome.embeddings {
            if !all_embeddings.contains(&emb.edges) {
                all_embeddings.push(emb.edges);
            }
        }
    }
    exact_union_probability(pg, &all_embeddings, limit)
}

/// Brute-force oracle: enumerates **every** possible world of `pg` and sums the
/// weights of the worlds whose subgraph distance to `q` is at most `delta`
/// (Definition 9 verbatim).  Only usable for tiny graphs; exists to validate
/// [`exact_ssp`] (and thereby Lemma 1) in tests.
pub fn exact_ssp_bruteforce(
    pg: &ProbabilisticGraph,
    q: &Graph,
    delta: usize,
    limit: usize,
) -> Result<f64, ProbError> {
    let worlds = enumerate_worlds(pg, limit)?;
    let mut p = 0.0;
    for w in &worlds {
        let wg = pg.world_graph(&w.present);
        if subgraph_similar(q, &wg, delta) {
            p += w.probability;
        }
    }
    Ok(p.clamp(0.0, 1.0))
}

/// Exact probability that a specific embedding (edge set) is fully present —
/// `Pr(Bf_i)` in Algorithm 5, computed exactly from the factorised model.
pub fn embedding_probability(pg: &ProbabilisticGraph, embedding: &[EdgeId]) -> f64 {
    pg.prob_all_present(embedding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jpt::JointProbTable;
    use pgs_graph::model::GraphBuilder;

    /// Figure-1-style fixture: graph 002 with a triangle table and a pendant
    /// table (see `model::tests::fixture_002` for the layout).
    fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    fn query_triangle() -> Graph {
        GraphBuilder::new()
            .vertices(&[0, 1, 2])
            .edge(0, 1, 9)
            .edge(1, 2, 9)
            .edge(0, 2, 9)
            .build()
    }

    #[test]
    fn sip_of_single_edge_feature_is_union_of_embedding_probabilities() {
        let pg = fixture_002();
        // Feature "a-b edge" has embeddings {e1} and {e2} in 002.
        let sip = exact_sip(&pg, &[vec![EdgeId(1)], vec![EdgeId(2)]]).unwrap();
        // Cross-check by inclusion–exclusion on the exact model.
        let p1 = pg.prob_all_present(&[EdgeId(1)]);
        let p2 = pg.prob_all_present(&[EdgeId(2)]);
        let p12 = pg.prob_all_present(&[EdgeId(1), EdgeId(2)]);
        assert!((sip - (p1 + p2 - p12)).abs() < 1e-9);
        assert!(sip > p1.max(p2));
        assert!(sip <= 1.0);
    }

    #[test]
    fn sip_edge_cases() {
        let pg = fixture_002();
        assert_eq!(exact_sip(&pg, &[]).unwrap(), 0.0);
        assert_eq!(exact_sip(&pg, &[vec![]]).unwrap(), 1.0);
        let single = exact_sip(&pg, &[vec![EdgeId(3)]]).unwrap();
        assert!((single - pg.edge_presence_prob(EdgeId(3))).abs() < 1e-9);
    }

    #[test]
    fn ssp_matches_bruteforce_oracle() {
        let pg = fixture_002();
        let q = query_triangle();
        for delta in 0..=3 {
            let via_lemma1 = exact_ssp(&pg, &q, delta, DEFAULT_EXACT_LIMIT).unwrap();
            let brute = exact_ssp_bruteforce(&pg, &q, delta, DEFAULT_EXACT_LIMIT).unwrap();
            assert!(
                (via_lemma1 - brute).abs() < 1e-9,
                "delta={delta}: lemma1 {via_lemma1} vs brute {brute}"
            );
        }
    }

    #[test]
    fn ssp_is_monotone_in_delta() {
        let pg = fixture_002();
        let q = query_triangle();
        let mut prev = 0.0;
        for delta in 0..=3 {
            let ssp = exact_ssp(&pg, &q, delta, DEFAULT_EXACT_LIMIT).unwrap();
            assert!(ssp + 1e-12 >= prev, "SSP must not decrease with delta");
            prev = ssp;
        }
        assert!(
            (prev - 1.0).abs() < 1e-12,
            "delta = |q| gives probability 1"
        );
    }

    #[test]
    fn ssp_when_query_cannot_match_at_all() {
        let pg = fixture_002();
        // A query with a label that does not exist in 002.
        let q = GraphBuilder::new().vertices(&[7, 8]).edge(0, 1, 9).build();
        let ssp = exact_ssp(&pg, &q, 0, DEFAULT_EXACT_LIMIT).unwrap();
        assert_eq!(ssp, 0.0);
        // With delta = |q| it trivially matches.
        assert_eq!(exact_ssp(&pg, &q, 1, DEFAULT_EXACT_LIMIT).unwrap(), 1.0);
    }

    #[test]
    fn embedding_probability_matches_model() {
        let pg = fixture_002();
        let p = embedding_probability(&pg, &[EdgeId(0), EdgeId(2)]);
        assert!((p - pg.prob_all_present(&[EdgeId(0), EdgeId(2)])).abs() < 1e-12);
    }

    #[test]
    fn limit_is_enforced() {
        let pg = fixture_002();
        let sets: Vec<EdgeSet> = vec![vec![EdgeId(0)], vec![EdgeId(1)], vec![EdgeId(2)]];
        assert!(matches!(
            exact_union_probability(&pg, &sets, 2).unwrap_err(),
            ProbError::TooManyWorlds { .. }
        ));
    }
}
