//! Projected bitset-world sampling for union-of-embedding events.
//!
//! The Karp–Luby coverage estimator (Algorithm 5) repeatedly (1) picks an
//! embedding `i` with probability `Pr(Bf_i)/V`, (2) samples a possible world
//! conditioned on `Bf_i` holding, and (3) counts the trial iff no earlier
//! embedding also holds.  The estimator is designed so each trial costs on the
//! order of one embedding — not one graph — and the machinery here delivers
//! that bound:
//!
//! * **Projection** ([`ProjectedWorlds`]): only the JPT tables touched by the
//!   union of the event edges are sampled.  Under the partitioned model every
//!   untouched table is independent of the union event, so marginalising it
//!   away changes nothing (the same argument the S-Index uses for its
//!   independent-embedding bounds).  Each touched table is itself marginalised
//!   onto its relevant edges, shrinking `2^arity` rows to `2^relevant`.
//! * **Compact bitset universe**: the relevant edges are renumbered into a
//!   dense `u64`-word bitset, table by table, so one sampled table row lands
//!   in a world with one shift/OR and an embedding-holds check is a word-wise
//!   `AND`/compare against a precomputed presence mask.
//! * **Alias tables** ([`crate::alias::AliasTable`]): the embedding choice and
//!   every per-table row draw are O(1) instead of linear scans, and each
//!   embedding's per-table conditioning masks are resolved once at
//!   construction instead of re-scanning an `(EdgeId, bool)` slice per draw.
//!
//! The sample loop itself performs **zero heap allocations**: worlds are
//! written into a caller-owned scratch buffer of `words()` words.
//! [`UnionSampler::estimate_chunked`] splits the trials into fixed-size chunks
//! with per-chunk RNGs derived from a base seed, so the estimate is
//! byte-identical for every thread count.

use crate::alias::AliasTable;
use crate::model::ProbabilisticGraph;
use pgs_graph::arena::FlatVecVec;
use pgs_graph::model::EdgeId;
use pgs_graph::parallel::{derive_seed, par_map_chunked_costed, CostHint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trials per deterministic chunk of [`UnionSampler::estimate_chunked`].  The
/// chunk layout is part of the determinism contract: it depends only on the
/// trial count, never on the worker count.
const CHUNK_TRIALS: usize = 1024;

/// The sequential stopping rule evaluated by
/// [`UnionSampler::estimate_adaptive`] at its fixed chunk-round boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// The decision threshold the union probability is compared against
    /// (`ε` for threshold queries, the running k-th-best lower bound for
    /// top-k queries).
    pub threshold: f64,
    /// Failure budget `ξ` of the whole check sequence: the per-check
    /// confidence intervals are widened by a union bound over the number of
    /// boundaries, so the probability that *any* early decision disagrees
    /// with the sign of `p − threshold` is at most `ξ`.
    pub xi: f64,
    /// Whether the "interval entirely at or above the threshold" stop may
    /// fire.  Threshold queries set it (an accept is an accept); the top-k
    /// path clears it because ranked answers need their full-budget
    /// estimates — only clear losers may stop early there.
    pub accept_early: bool,
}

/// The result of one [`UnionSampler::estimate_adaptive`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEstimate {
    /// `V · cnt / m` over the `m` trials actually drawn, clamped to `[0, 1]`.
    /// When no early stop fires this is bit-identical to what
    /// [`UnionSampler::estimate_chunked`] returns for the same `(n, seed)`.
    pub estimate: f64,
    /// Trials actually drawn (`≤ n`; `0` when the `[0, min(V, 1)]` prior
    /// interval already decided).
    pub samples_drawn: usize,
    /// `Some(true)` when the interval separated at or above the threshold,
    /// `Some(false)` when it separated below, `None` when the full budget ran.
    pub decision: Option<bool>,
}

/// The deterministic round schedule of [`UnionSampler::estimate_adaptive`]:
/// chunk counts `1, 1, 2, 4, 8, …` (capped by the remainder), so stopping
/// checks are dense early — where the savings are — while later rounds grow
/// enough to amortise dispatch.  A pure function of the chunk count, never of
/// the worker count: the check boundaries are part of the determinism
/// contract.
fn adaptive_rounds(chunks: usize) -> Vec<usize> {
    let mut rounds = Vec::new();
    let mut done = 0usize;
    while done < chunks {
        // Each round doubles the cumulative chunk count, so the check
        // boundaries sit at 1, 2, 4, 8, … chunks.
        let take = done.max(1).min(chunks - done);
        rounds.push(take);
        done += take;
    }
    rounds
}

/// A probabilistic graph projected onto the JPT tables touched by a set of
/// relevant edges, with the relevant edges renumbered into a compact bitset
/// universe and one alias table per projected table row distribution.
#[derive(Debug, Clone)]
pub struct ProjectedWorlds {
    /// `(edge, compact bit)` pairs, sorted by edge id for lookup.
    edge_bits: Vec<(EdgeId, u32)>,
    /// Number of compact bits (= number of relevant edges).
    bits: usize,
    /// Number of `u64` words a world occupies (at least 1).
    words: usize,
    tables: Vec<ProjectedTable>,
    /// Every projected table's marginal rows packed back to back — one
    /// contiguous per-candidate arena built at projection time.  Table `t`'s
    /// block is `probs[t.probs_start..][..1 << t.width]`.
    probs: Vec<f64>,
}

/// One relevant table, marginalised onto its relevant edges.
#[derive(Debug, Clone)]
struct ProjectedTable {
    /// First compact bit of this table's contiguous block.
    offset: u32,
    /// Number of projected bits (`1..=MAX_ARITY`).
    width: u32,
    /// Start of this table's `2^width` marginal rows in the shared arena.
    probs_start: u32,
    /// O(1) row sampler over the table's marginal rows.
    alias: AliasTable,
}

impl ProjectedWorlds {
    /// Projects `pg` onto the tables touched by `relevant` (edge ids of the
    /// skeleton; duplicates are fine).  Compact bits are assigned table by
    /// table, so each table's projected row scatters into a world with a
    /// single shift/OR.
    pub fn new(pg: &ProbabilisticGraph, relevant: &[EdgeId]) -> ProjectedWorlds {
        let mut sorted: Vec<EdgeId> = relevant.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::new_sorted(pg, &sorted)
    }

    /// [`Self::new`] for a relevant-edge set that is already sorted and
    /// deduplicated — callers that computed the set anyway (the verification
    /// path sorts it for the exact-cutoff check) skip the re-normalisation.
    pub fn new_sorted(pg: &ProbabilisticGraph, sorted: &[EdgeId]) -> ProjectedWorlds {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "must be sorted + deduped"
        );
        let touched = pg.tables_touched(sorted);
        let mut edge_bits: Vec<(EdgeId, u32)> = Vec::with_capacity(sorted.len());
        let mut tables: Vec<ProjectedTable> = Vec::with_capacity(touched.len());
        let mut probs: Vec<f64> = Vec::new();
        let mut offset = 0u32;
        let mut keep: Vec<usize> = Vec::new();
        for &ti in &touched {
            let table = &pg.tables()[ti];
            // Table bit positions of the relevant edges, in table bit order
            // (ascending edge id, the table's canonical order).
            keep.clear();
            keep.extend(
                table
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| sorted.binary_search(e).is_ok())
                    .map(|(bit, _)| bit),
            );
            for (i, &bit) in keep.iter().enumerate() {
                edge_bits.push((table.edges()[bit], offset + i as u32));
            }
            let probs_start = table.marginal_rows_into(&keep, &mut probs);
            let alias = AliasTable::new(&probs[probs_start..])
                // pgs-lint: allow(panic-in-library, a validated JPT marginal is a non-empty distribution with positive mass)
                .expect("a valid JPT marginal is a non-empty distribution");
            tables.push(ProjectedTable {
                offset,
                width: keep.len() as u32,
                probs_start: probs_start as u32,
                alias,
            });
            offset += keep.len() as u32;
        }
        edge_bits.sort_unstable_by_key(|&(e, _)| e);
        let bits = offset as usize;
        ProjectedWorlds {
            edge_bits,
            bits,
            words: bits.div_ceil(64).max(1),
            tables,
            probs,
        }
    }

    /// The marginal rows of projected table `tp`, sliced out of the shared
    /// arena.
    fn table_probs(&self, tp: usize) -> &[f64] {
        let t = &self.tables[tp];
        &self.probs[t.probs_start as usize..][..1usize << t.width]
    }

    /// Number of `u64` words of one projected world (scratch buffer size).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of relevant edges (compact bits).
    pub fn relevant_edges(&self) -> usize {
        self.bits
    }

    /// Number of projected (touched) tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Compact bit of a relevant edge, if the edge is part of the projection.
    pub fn bit_of(&self, e: EdgeId) -> Option<u32> {
        self.edge_bits
            .binary_search_by_key(&e, |&(edge, _)| edge)
            .ok()
            .map(|i| self.edge_bits[i].1)
    }

    /// Presence bitmask of an edge set over the compact universe.  Every edge
    /// must be part of the projection (it is, whenever the projection was
    /// built over a superset of the event's edges).
    pub fn mask_of(&self, edges: &[EdgeId]) -> Vec<u64> {
        let mut mask = vec![0u64; self.words];
        for &e in edges {
            let bit = self
                .bit_of(e)
                // pgs-lint: allow(panic-in-library, projection invariant: events only name edges inside the relevant set)
                .expect("event edge outside the projection's relevant set");
            mask[bit as usize / 64] |= 1u64 << (bit % 64);
        }
        mask
    }

    /// Samples one projected world into `scratch` (length [`Self::words`]),
    /// overwriting its contents.  No heap allocation.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut [u64]) {
        scratch.fill(0);
        for t in &self.tables {
            let row = t.alias.sample(rng) as u64;
            scatter(scratch, t.offset, t.width, row);
        }
    }
}

/// ORs a `width`-bit row into the bitset at bit `offset` (rows never exceed
/// `MAX_ARITY` = 16 bits, so at most two words are touched).
#[inline]
fn scatter(world: &mut [u64], offset: u32, width: u32, row: u64) {
    let w = (offset / 64) as usize;
    let s = offset % 64;
    world[w] |= row << s;
    if s + width > 64 {
        world[w + 1] |= row >> (64 - s);
    }
}

/// True if every bit of `mask` is set in `world`.
#[inline]
pub fn mask_covered(world: &[u64], mask: &[u64]) -> bool {
    world.iter().zip(mask).all(|(w, m)| w & m == *m)
}

/// True if no bit of `mask` is set in `world`.
#[inline]
pub fn mask_disjoint(world: &[u64], mask: &[u64]) -> bool {
    world.iter().zip(mask).all(|(w, m)| w & m == 0)
}

/// Conditional row sampler of one `(embedding, table)` pair: the rows of the
/// projected table consistent with "all embedding edges of this table
/// present", with an alias table over their renormalised probabilities.
#[derive(Debug, Clone)]
struct CondTable {
    /// Position of the table in `ProjectedWorlds::tables`.
    table_pos: u32,
    /// Start of this pair's consistent row values in the shared
    /// `UnionSampler::cond_rows` arena.
    rows_start: u32,
    /// Number of consistent rows.
    rows_len: u32,
    /// O(1) sampler over the rows.
    alias: AliasTable,
}

/// The Algorithm 5 coverage sampler for one candidate: projection, embedding
/// alias, presence masks and per-embedding conditional row samplers, all
/// precomputed so one trial is a handful of O(1) draws and word ops.
#[derive(Debug, Clone)]
pub struct UnionSampler {
    projection: ProjectedWorlds,
    /// `V = Σ Pr(Bf_i)` — the estimator's normalising constant.
    total_weight: f64,
    /// Chooses embedding `i` with probability `Pr(Bf_i) / V`.
    embedding_alias: AliasTable,
    /// Presence masks, `embeddings.len() × stride` words flattened.
    masks: Vec<u64>,
    stride: usize,
    /// Per embedding (row): conditional samplers of the tables it touches,
    /// sorted by table position — the cond-table grid as one flat
    /// offsets+values arena.
    cond: FlatVecVec<CondTable>,
    /// Every conditional sampler's consistent row values, packed back to
    /// back (see [`CondTable::rows_start`]).
    cond_rows: Vec<u32>,
}

impl UnionSampler {
    /// Builds the sampler for the union event of `embeddings` (edge sets of
    /// the skeleton of `pg`).
    ///
    /// Returns `None` when the union event has zero probability (no
    /// embeddings, or every `Pr(Bf_i) = 0`) — the caller should answer `0.0`
    /// directly.
    pub fn new(pg: &ProbabilisticGraph, embeddings: &[Vec<EdgeId>]) -> Option<UnionSampler> {
        let mut relevant: Vec<EdgeId> = embeddings.iter().flatten().copied().collect();
        relevant.sort_unstable();
        relevant.dedup();
        Self::with_relevant(pg, embeddings, &relevant)
    }

    /// [`Self::new`] with the union of the embedding edges already computed
    /// (sorted + deduplicated) — the verification path derives that set for
    /// its exact-cutoff check and passes it on instead of re-flattening.
    pub fn with_relevant(
        pg: &ProbabilisticGraph,
        embeddings: &[Vec<EdgeId>],
        relevant: &[EdgeId],
    ) -> Option<UnionSampler> {
        if embeddings.is_empty() {
            return None;
        }
        let weights: Vec<f64> = embeddings.iter().map(|e| pg.prob_all_present(e)).collect();
        let total_weight: f64 = weights.iter().sum();
        if total_weight <= 0.0 || total_weight.is_nan() {
            return None;
        }
        let embedding_alias = AliasTable::new(&weights)?;
        let projection = ProjectedWorlds::new_sorted(pg, relevant);
        let stride = projection.words();
        let mut masks = vec![0u64; embeddings.len() * stride];
        for (i, emb) in embeddings.iter().enumerate() {
            masks[i * stride..(i + 1) * stride].copy_from_slice(&projection.mask_of(emb));
        }
        let mut cond = FlatVecVec::with_capacity(embeddings.len(), 0);
        let mut cond_rows = Vec::new();
        let mut tmp = Vec::new();
        for emb in embeddings {
            conditional_tables(&projection, emb, &mut tmp, &mut cond_rows);
            cond.push_row(tmp.drain(..));
        }
        Some(UnionSampler {
            projection,
            total_weight,
            embedding_alias,
            masks,
            stride,
            cond,
            cond_rows,
        })
    }

    /// The normalising constant `V = Σ Pr(Bf_i)`.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The underlying projection (scratch sizing, diagnostics).
    pub fn projection(&self) -> &ProjectedWorlds {
        &self.projection
    }

    /// Words per scratch world buffer.
    pub fn words(&self) -> usize {
        self.stride
    }

    /// Runs one Karp–Luby trial into the caller-owned `scratch` buffer
    /// (length [`Self::words`]); returns whether the trial counts (no earlier
    /// embedding also holds in the sampled world).  No heap allocation.
    pub fn sample_trial<R: Rng + ?Sized>(&self, rng: &mut R, scratch: &mut [u64]) -> bool {
        let chosen = self.embedding_alias.sample(rng);
        scratch.fill(0);
        let conds = self.cond.row(chosen);
        let mut ci = 0usize;
        for (tp, t) in self.projection.tables.iter().enumerate() {
            let row = match conds.get(ci) {
                Some(c) if c.table_pos as usize == tp => {
                    ci += 1;
                    debug_assert!(c.rows_len > 0, "conditional sampler with no rows");
                    self.cond_rows[c.rows_start as usize + c.alias.sample(rng)] as u64
                }
                _ => t.alias.sample(rng) as u64,
            };
            scatter(scratch, t.offset, t.width, row);
        }
        // Canonical-pair check: count iff no earlier embedding holds.
        self.masks[..chosen * self.stride]
            .chunks_exact(self.stride)
            .all(|mask| !mask_covered(scratch, mask))
    }

    /// Sequential estimate over `n` trials drawn from `rng`:
    /// `V · cnt / n`, clamped to `[0, 1]`.
    pub fn estimate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let mut scratch = vec![0u64; self.stride];
        let mut count = 0usize;
        for _ in 0..n {
            if self.sample_trial(rng, &mut scratch) {
                count += 1;
            }
        }
        (self.total_weight * count as f64 / n as f64).clamp(0.0, 1.0)
    }

    /// Deterministic, parallel estimate: the `n` trials are split into
    /// fixed-size chunks, chunk `c` draws from
    /// `StdRng::seed_from_u64(derive_seed([seed, c]))`, and the chunks run on
    /// up to `threads` workers (`0` = automatic).  The chunk layout depends
    /// only on `n`, so the result is byte-identical for every thread count.
    pub fn estimate_chunked(&self, n: usize, seed: u64, threads: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let chunks: Vec<usize> = (0..n.div_ceil(CHUNK_TRIALS)).collect();
        // Each chunk runs up to 1024 full trials — heavy enough that even two
        // chunks are worth handing to the pool.
        let counts: Vec<usize> =
            par_map_chunked_costed(&chunks, threads, CostHint::HEAVY, |_, &c| {
                let mut rng = StdRng::seed_from_u64(derive_seed(&[seed, c as u64]));
                let trials = CHUNK_TRIALS.min(n - c * CHUNK_TRIALS);
                let mut scratch = vec![0u64; self.stride];
                let mut count = 0usize;
                for _ in 0..trials {
                    if self.sample_trial(&mut rng, &mut scratch) {
                        count += 1;
                    }
                }
                count
            });
        let count: usize = counts.iter().sum();
        (self.total_weight * count as f64 / n as f64).clamp(0.0, 1.0)
    }

    /// [`Self::estimate_chunked`] with a sequential stopping rule: the same
    /// deterministic chunks (chunk `c` always draws from
    /// `derive_seed([seed, c])`) run through the worker pool in rounds of the
    /// fixed [`adaptive_rounds`] schedule, and after each round the running
    /// Hoeffding interval of the union probability is compared against
    /// `rule.threshold` — once the interval lies entirely below (or, with
    /// `rule.accept_early`, entirely at or above) the threshold, the
    /// remaining rounds are skipped.
    ///
    /// Determinism: the chunk layout, the round boundaries and the interval
    /// are pure functions of `(n, seed)` and the deterministic chunk-prefix
    /// counts, so the result is byte-identical for every thread count.  When
    /// no stop fires, `estimate` is bit-identical to
    /// [`Self::estimate_chunked`] for the same `(n, seed)` — same chunks,
    /// same integer count sum, same final expression.
    ///
    /// Soundness: each check uses the two-sided Hoeffding half-width at
    /// confidence `1 − ξ / checks` on the Bernoulli mean `p / V`, so by a
    /// union bound over the check sequence an early decision disagrees with
    /// the sign of `p − threshold` with probability at most `ξ`.  The prior
    /// interval `[0, min(V, 1)]` is exact (union bound over the embedding
    /// events), so its zero-sample decisions are always right — and always
    /// agree with the fixed-budget decision, since the estimate can never
    /// leave that interval.
    pub fn estimate_adaptive(
        &self,
        n: usize,
        seed: u64,
        threads: usize,
        rule: &StoppingRule,
    ) -> AdaptiveEstimate {
        if n == 0 {
            return AdaptiveEstimate {
                estimate: 0.0,
                samples_drawn: 0,
                decision: None,
            };
        }
        let v = self.total_weight;
        // The union probability lives in [0, min(V, 1)] before any trial.
        let upper_cap = v.min(1.0);
        if upper_cap < rule.threshold {
            return AdaptiveEstimate {
                estimate: 0.0,
                samples_drawn: 0,
                decision: Some(false),
            };
        }
        if rule.accept_early && rule.threshold <= 0.0 {
            return AdaptiveEstimate {
                estimate: 0.0,
                samples_drawn: 0,
                decision: Some(true),
            };
        }
        let rounds = adaptive_rounds(n.div_ceil(CHUNK_TRIALS));
        // One early check per round boundary except the last (running to the
        // final round is the full-budget answer, not an early decision).
        let checks = (rounds.len() - 1).max(1) as f64;
        let mut drawn = 0usize;
        let mut count = 0usize;
        let mut next_chunk = 0usize;
        for (ri, &round) in rounds.iter().enumerate() {
            let chunk_ids: Vec<usize> = (next_chunk..next_chunk + round).collect();
            next_chunk += round;
            let counts: Vec<usize> =
                par_map_chunked_costed(&chunk_ids, threads, CostHint::HEAVY, |_, &c| {
                    let mut rng = StdRng::seed_from_u64(derive_seed(&[seed, c as u64]));
                    let trials = CHUNK_TRIALS.min(n - c * CHUNK_TRIALS);
                    let mut scratch = vec![0u64; self.stride];
                    let mut chunk_count = 0usize;
                    for _ in 0..trials {
                        if self.sample_trial(&mut rng, &mut scratch) {
                            chunk_count += 1;
                        }
                    }
                    chunk_count
                });
            for (&c, &k) in chunk_ids.iter().zip(&counts) {
                drawn += CHUNK_TRIALS.min(n - c * CHUNK_TRIALS);
                count += k;
            }
            if ri + 1 == rounds.len() {
                break;
            }
            let m = drawn as f64;
            let mu = count as f64 / m;
            let eps = ((2.0 * checks / rule.xi).ln() / (2.0 * m)).sqrt();
            let lower = (v * (mu - eps)).max(0.0);
            let upper = (v * (mu + eps)).min(upper_cap);
            if upper < rule.threshold {
                return AdaptiveEstimate {
                    estimate: (v * count as f64 / m).clamp(0.0, 1.0),
                    samples_drawn: drawn,
                    decision: Some(false),
                };
            }
            if rule.accept_early && lower >= rule.threshold {
                return AdaptiveEstimate {
                    estimate: (v * count as f64 / m).clamp(0.0, 1.0),
                    samples_drawn: drawn,
                    decision: Some(true),
                };
            }
        }
        AdaptiveEstimate {
            estimate: (v * count as f64 / n as f64).clamp(0.0, 1.0),
            samples_drawn: drawn,
            decision: None,
        }
    }
}

/// Resolves one embedding's conditioning against every projected table it
/// touches: the consistent rows of each table (appended onto the shared
/// `cond_rows` arena) plus an alias over their renormalised probabilities.
/// The resulting `CondTable`s are pushed onto `out` (cleared first).
fn conditional_tables(
    projection: &ProjectedWorlds,
    embedding: &[EdgeId],
    out: &mut Vec<CondTable>,
    cond_rows: &mut Vec<u32>,
) {
    out.clear();
    for (tp, t) in projection.tables.iter().enumerate() {
        // Row-local fixed bits: embedding edges inside this table's block.
        let mut fixed = 0u32;
        for &e in embedding {
            if let Some(bit) = projection.bit_of(e) {
                if bit >= t.offset && bit < t.offset + t.width {
                    fixed |= 1 << (bit - t.offset);
                }
            }
        }
        if fixed == 0 {
            continue;
        }
        let rows_start = cond_rows.len();
        let mut weights: Vec<f64> = Vec::new();
        for (row, &p) in projection.table_probs(tp).iter().enumerate() {
            if row as u32 & fixed == fixed {
                cond_rows.push(row as u32);
                weights.push(p);
            }
        }
        let alias = AliasTable::new(&weights).unwrap_or_else(|| {
            // Zero conditional mass means Pr(Bf_i) = 0, so this embedding is
            // never chosen by the alias over weights; still honour the fixed
            // bits so the sampler stays well-defined.
            cond_rows.truncate(rows_start);
            cond_rows.push(fixed);
            // pgs-lint: allow(panic-in-library, a singleton weight of 1.0 is a valid distribution)
            AliasTable::new(&[1.0]).expect("singleton distribution")
        });
        out.push(CondTable {
            table_pos: tp as u32,
            rows_start: rows_start as u32,
            rows_len: (cond_rows.len() - rows_start) as u32,
            alias,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_union_probability;
    use crate::jpt::JointProbTable;
    use crate::montecarlo::MonteCarloConfig;
    use pgs_graph::model::GraphBuilder;

    /// Figure-1-style fixture: triangle table + pendant table.
    fn fixture_002() -> ProbabilisticGraph {
        let skeleton = GraphBuilder::new()
            .name("002")
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9)
            .edge(0, 2, 9)
            .edge(1, 2, 9)
            .edge(2, 3, 9)
            .edge(2, 4, 9)
            .build();
        let t1 =
            JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
                .unwrap();
        let t2 = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
        ProbabilisticGraph::new(skeleton, vec![t1, t2], true).unwrap()
    }

    /// A graph whose table count is ≥ 4× what the embedding union touches: a
    /// correlated pair {e0, e1} plus `extra` pendant chain tables the union
    /// never mentions.
    fn fixture_many_irrelevant_tables(extra: usize) -> ProbabilisticGraph {
        let mut builder = GraphBuilder::new().vertices(&vec![0u32; 3 + extra]);
        builder = builder.edge(0, 1, 1).edge(1, 2, 1);
        for i in 0..extra {
            builder = builder.edge(2 + i as u32, 3 + i as u32, 2);
        }
        let skeleton = builder.build();
        let mut tables =
            vec![JointProbTable::from_max_rule(&[(EdgeId(0), 0.6), (EdgeId(1), 0.5)]).unwrap()];
        for i in 0..extra {
            tables.push(
                JointProbTable::independent(&[(EdgeId(2 + i as u32), 0.3 + 0.4 * (i % 2) as f64)])
                    .unwrap(),
            );
        }
        ProbabilisticGraph::new(skeleton, tables, true).unwrap()
    }

    #[test]
    fn projection_covers_only_touched_tables() {
        let pg = fixture_many_irrelevant_tables(8);
        let projection = ProjectedWorlds::new(&pg, &[EdgeId(0), EdgeId(1)]);
        assert_eq!(projection.table_count(), 1);
        assert_eq!(projection.relevant_edges(), 2);
        assert_eq!(projection.words(), 1);
        assert_eq!(projection.bit_of(EdgeId(0)), Some(0));
        assert_eq!(projection.bit_of(EdgeId(1)), Some(1));
        assert_eq!(projection.bit_of(EdgeId(5)), None);
        assert_eq!(projection.mask_of(&[EdgeId(0), EdgeId(1)]), vec![0b11]);
    }

    #[test]
    fn projected_sampling_matches_marginals() {
        let pg = fixture_002();
        // Project onto a strict subset of one table + the pendant table.
        let relevant = vec![EdgeId(0), EdgeId(2), EdgeId(3)];
        let projection = ProjectedWorlds::new(&pg, &relevant);
        assert_eq!(projection.table_count(), 2);
        assert_eq!(projection.relevant_edges(), 3);
        let mut rng = StdRng::seed_from_u64(11);
        let mut scratch = vec![0u64; projection.words()];
        let n = 60_000;
        let mask_e0 = projection.mask_of(&[EdgeId(0)]);
        let mask_joint = projection.mask_of(&[EdgeId(0), EdgeId(2)]);
        let (mut c0, mut cj) = (0usize, 0usize);
        for _ in 0..n {
            projection.sample_into(&mut rng, &mut scratch);
            if mask_covered(&scratch, &mask_e0) {
                c0 += 1;
            }
            if mask_covered(&scratch, &mask_joint) {
                cj += 1;
            }
        }
        let f0 = c0 as f64 / n as f64;
        let fj = cj as f64 / n as f64;
        assert!((f0 - pg.edge_presence_prob(EdgeId(0))).abs() < 0.02);
        // The correlated joint must survive the projection (table marginals
        // keep intra-table correlation).
        let joint = pg.prob_all_present(&[EdgeId(0), EdgeId(2)]);
        assert!((fj - joint).abs() < 0.02);
    }

    #[test]
    fn union_estimate_matches_exact_on_fixture_002() {
        let pg = fixture_002();
        // Embeddings of the triangle minus one edge (δ = 1 relaxations).
        let embeddings: Vec<Vec<EdgeId>> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(2)],
            vec![EdgeId(1), EdgeId(2)],
        ];
        let exact = exact_union_probability(&pg, &embeddings, 22).unwrap();
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let est = sampler.estimate(40_000, &mut rng);
        assert!(
            (est - exact).abs() < 0.02,
            "estimate {est} vs exact {exact}"
        );
        // V is the sum of the embedding probabilities.
        let v: f64 = embeddings.iter().map(|e| pg.prob_all_present(e)).sum();
        assert!((sampler.total_weight() - v).abs() < 1e-12);
    }

    #[test]
    fn union_estimate_matches_exact_with_irrelevant_tables() {
        let pg = fixture_many_irrelevant_tables(12);
        assert!(pg.tables().len() >= 13);
        let embeddings: Vec<Vec<EdgeId>> = vec![vec![EdgeId(0)], vec![EdgeId(0), EdgeId(1)]];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        // 13 tables in the graph, 1 touched by the union.
        assert_eq!(sampler.projection().table_count(), 1);
        let exact = exact_union_probability(&pg, &embeddings, 22).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let est = sampler.estimate(40_000, &mut rng);
        assert!(
            (est - exact).abs() < 0.02,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn chunked_estimate_is_thread_count_invariant_and_repeatable() {
        let pg = fixture_002();
        let embeddings: Vec<Vec<EdgeId>> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(3), EdgeId(4)],
        ];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let n = MonteCarloConfig::default().num_samples() + 777; // non-multiple of the chunk size
        let reference = sampler.estimate_chunked(n, 0xFACE, 1);
        for threads in [2usize, 3, 4, 8, 0] {
            assert_eq!(
                sampler.estimate_chunked(n, 0xFACE, threads),
                reference,
                "threads = {threads}"
            );
        }
        // Repeat with the same seed: identical. Different seed: a different
        // (but close) estimate.
        assert_eq!(sampler.estimate_chunked(n, 0xFACE, 4), reference);
        let other = sampler.estimate_chunked(n, 0xBEEF, 4);
        assert!((other - reference).abs() < 0.05);
    }

    #[test]
    fn adaptive_rounds_schedule_is_doubling_and_exhaustive() {
        assert!(adaptive_rounds(0).is_empty());
        assert_eq!(adaptive_rounds(1), vec![1]);
        assert_eq!(adaptive_rounds(2), vec![1, 1]);
        assert_eq!(adaptive_rounds(9), vec![1, 1, 2, 4, 1]);
        assert_eq!(adaptive_rounds(16), vec![1, 1, 2, 4, 8]);
        for chunks in [1usize, 2, 3, 7, 31, 100] {
            assert_eq!(adaptive_rounds(chunks).iter().sum::<usize>(), chunks);
        }
    }

    /// A rule that can never fire (threshold above any reachable upper
    /// bound would reject immediately; a threshold of 1 + V with accepts
    /// disabled never separates), so the adaptive run must degrade to the
    /// fixed-budget estimate bit for bit.
    #[test]
    fn adaptive_without_a_stop_matches_estimate_chunked_bitwise() {
        let pg = fixture_002();
        let embeddings: Vec<Vec<EdgeId>> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(3), EdgeId(4)],
        ];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let n = 5 * 1024 + 321;
        let rule = StoppingRule {
            threshold: 0.0,
            xi: 0.05,
            accept_early: false,
        };
        for seed in [0xFACEu64, 0xBEEF, 7] {
            let adaptive = sampler.estimate_adaptive(n, seed, 1, &rule);
            assert_eq!(adaptive.decision, None);
            assert_eq!(adaptive.samples_drawn, n);
            assert_eq!(
                adaptive.estimate.to_bits(),
                sampler.estimate_chunked(n, seed, 1).to_bits(),
                "seed {seed:#x}"
            );
        }
    }

    #[test]
    fn adaptive_decisions_are_thread_count_invariant_and_repeatable() {
        let pg = fixture_002();
        let embeddings: Vec<Vec<EdgeId>> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(2)],
            vec![EdgeId(1), EdgeId(2)],
            vec![EdgeId(3), EdgeId(4)],
        ];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let n = 9 * 1024;
        // Exercise reject, accept and no-stop thresholds; all must be
        // byte-identical across worker counts and across repeats.
        for (threshold, accept_early) in [(0.05, true), (0.99, true), (0.5, false), (0.5, true)] {
            let rule = StoppingRule {
                threshold,
                xi: 0.05,
                accept_early,
            };
            let reference = sampler.estimate_adaptive(n, 0xFACE, 1, &rule);
            for threads in [2usize, 3, 4, 8, 0] {
                assert_eq!(
                    sampler.estimate_adaptive(n, 0xFACE, threads, &rule),
                    reference,
                    "threshold={threshold} accept_early={accept_early} threads={threads}"
                );
            }
            assert_eq!(sampler.estimate_adaptive(n, 0xFACE, 4, &rule), reference);
        }
    }

    #[test]
    fn adaptive_stops_early_on_clear_decisions() {
        let pg = fixture_002();
        let embeddings: Vec<Vec<EdgeId>> = vec![
            vec![EdgeId(0), EdgeId(1)],
            vec![EdgeId(0), EdgeId(2)],
            vec![EdgeId(1), EdgeId(2)],
        ];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let exact = exact_union_probability(&pg, &embeddings, 22).unwrap();
        let n = 64 * 1024;
        // Threshold far below the union probability: early accept.
        let accept = sampler.estimate_adaptive(
            n,
            0xACCE,
            1,
            &StoppingRule {
                threshold: exact / 4.0,
                xi: 0.05,
                accept_early: true,
            },
        );
        assert_eq!(accept.decision, Some(true));
        assert!(
            accept.samples_drawn < n,
            "must save samples on a clear accept"
        );
        // The same threshold with accepts disabled (the top-k mode) must run
        // the full budget instead.
        let no_accept = sampler.estimate_adaptive(
            n,
            0xACCE,
            1,
            &StoppingRule {
                threshold: exact / 4.0,
                xi: 0.05,
                accept_early: false,
            },
        );
        assert_eq!(no_accept.decision, None);
        assert_eq!(no_accept.samples_drawn, n);
        // Threshold far above: early reject.
        let reject = sampler.estimate_adaptive(
            n,
            0xACCE,
            1,
            &StoppingRule {
                threshold: (exact + 1.0) / 2.0,
                xi: 0.05,
                accept_early: true,
            },
        );
        assert_eq!(reject.decision, Some(false));
        assert!(reject.samples_drawn < n);
        // A threshold above min(V, 1) rejects before the first trial.
        let hopeless = sampler.estimate_adaptive(
            n,
            0xACCE,
            1,
            &StoppingRule {
                threshold: sampler.total_weight().min(1.0) + 0.01,
                xi: 0.05,
                accept_early: false,
            },
        );
        assert_eq!(hopeless.decision, Some(false));
        assert_eq!(hopeless.samples_drawn, 0);
    }

    #[test]
    fn zero_probability_unions_return_none() {
        let pg = fixture_002();
        assert!(UnionSampler::new(&pg, &[]).is_none());
        // A deterministic-zero table: Pr(e0 present) = 0.
        let g = GraphBuilder::new().vertices(&[0, 0]).edge(0, 1, 1).build();
        let t = JointProbTable::new(vec![EdgeId(0)], vec![1.0, 0.0]).unwrap();
        let dead = ProbabilisticGraph::new(g, vec![t], true).unwrap();
        assert!(UnionSampler::new(&dead, &[vec![EdgeId(0)]]).is_none());
    }

    #[test]
    fn empty_embedding_dominates_the_union() {
        let pg = fixture_002();
        // The empty pattern holds in every world: the union probability is 1
        // and no later embedding is ever counted against it.
        let embeddings: Vec<Vec<EdgeId>> = vec![vec![], vec![EdgeId(0)]];
        let sampler = UnionSampler::new(&pg, &embeddings).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let est = sampler.estimate(20_000, &mut rng);
        assert!((est - 1.0).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn scatter_spills_across_word_boundaries() {
        let mut world = vec![0u64; 2];
        scatter(&mut world, 60, 8, 0b1011_0101);
        assert_eq!(world[0], 0b0101u64 << 60);
        assert_eq!(world[1], 0b1011);
        assert!(mask_covered(&world, &[0b0101u64 << 60, 0b1011]));
        assert!(!mask_covered(&world, &[1u64 << 59, 0]));
        assert!(mask_disjoint(&world, &[0b1010u64 << 60, 0b0100]));
    }
}
