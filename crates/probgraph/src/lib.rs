//! # pgs-prob — probabilistic graph model
//!
//! Implements the probabilistic graph model of the paper (Definitions 2–4):
//! a deterministic skeleton graph plus **joint probability tables (JPTs)** over
//! *neighbor edge sets*, possible-world semantics, world sampling, the
//! Monte-Carlo conditional estimator of Algorithm 3, exact subgraph-isomorphism
//! / similarity probabilities used as test oracles and experimental baselines,
//! and the independent-edge model (the `IND` baseline of Figure 14).
//!
//! ## Correlation model
//!
//! The paper attaches one JPT to every neighbor-edge set and defines the weight
//! of a possible world as the product of the JPTs (Equation 1).  That product
//! is a normalised probability measure exactly when the neighbor-edge sets are
//! variable-disjoint, and the paper's own sampler (Algorithm 3, line 3:
//! "sample each neighbor edge set ne of g according to Pr(x_ne)") samples the
//! groups independently.  [`model::ProbabilisticGraph`] therefore requires the
//! neighbor-edge sets to form a **partition** of the edge set — each group
//! still being a genuine neighbor-edge set (edges sharing a vertex or forming a
//! triangle), see [`neighbor`].  The construction used by the data generator
//! mirrors the paper's STRING pre-processing (max-rule JPTs).  This
//! substitution is documented in `DESIGN.md` §3.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod conditional;
pub mod error;
pub mod exact;
pub mod independent;
pub mod jpt;
pub mod model;
pub mod montecarlo;
pub mod neighbor;
pub mod sample;
pub mod union_sampler;
pub mod world;

pub use alias::AliasTable;
pub use conditional::{conditional_event_probability, EventKind};
pub use error::ProbError;
pub use exact::{exact_sip, exact_ssp, prob_of_partial_assignment};
pub use independent::to_independent_model;
pub use jpt::JointProbTable;
pub use model::ProbabilisticGraph;
pub use montecarlo::MonteCarloConfig;
pub use neighbor::partition_neighbor_edges;
pub use union_sampler::{ProjectedWorlds, UnionSampler};
pub use world::{enumerate_worlds, PossibleWorld};
