//! Joint probability tables over neighbor-edge sets.
//!
//! Definition 2 attaches a joint density `Pr(x_ne)` to every neighbor-edge set
//! `ne`; Figure 1 shows such tables (JPT, JPT1, JPT2).  A [`JointProbTable`]
//! stores the full distribution over the `2^k` assignments of its `k` edge
//! variables (assignments are bitmasks: bit `i` set ⇔ the `i`-th edge of
//! [`JointProbTable::edges`] is present).
//!
//! Besides exact probability lookups the table supports marginalisation over
//! arbitrary partial assignments, single-edge marginals, sampling, and two
//! constructors matching the paper's experimental setup: independent products
//! and the STRING "max rule" (`Pr(x_ne) = max_i Pr(x_i)`, normalised).

use crate::error::ProbError;
use pgs_graph::model::EdgeId;
use rand::Rng;

/// Tolerance used when checking that a table is normalised.
const NORMALIZATION_TOLERANCE: f64 = 1e-6;

/// Maximum number of variables per table (assignments are stored in a `u32`
/// bitmask and tables are materialised densely).
pub const MAX_ARITY: usize = 16;

/// A joint probability distribution over the existence variables of a set of
/// edges.
#[derive(Debug, Clone, PartialEq)]
pub struct JointProbTable {
    /// The edges (variables) of this table, sorted ascending.
    edges: Vec<EdgeId>,
    /// `probs[mask]` = probability of the assignment encoded by `mask`
    /// (bit `i` ⇔ `edges[i]` present). Length `2^edges.len()`, sums to 1.
    probs: Vec<f64>,
}

impl JointProbTable {
    /// Creates a table from explicit row probabilities.
    ///
    /// `edges` must be non-empty and duplicate-free; `probs` must have
    /// `2^|edges|` non-negative entries summing to 1 (within tolerance; the
    /// table is re-normalised to remove floating point drift).
    pub fn new(mut edges: Vec<EdgeId>, probs: Vec<f64>) -> Result<Self, ProbError> {
        if edges.is_empty() {
            return Err(ProbError::EmptyTable);
        }
        if edges.len() > MAX_ARITY {
            return Err(ProbError::ArityTooLarge(edges.len()));
        }
        let sorted_unique = {
            let mut s = edges.clone();
            s.sort_unstable();
            s.dedup();
            s.len() == edges.len()
        };
        if !sorted_unique {
            // A duplicated variable makes the distribution ill-defined.
            return Err(ProbError::WrongTableSize {
                arity: edges.len(),
                rows: probs.len(),
            });
        }
        let expected = 1usize << edges.len();
        if probs.len() != expected {
            return Err(ProbError::WrongTableSize {
                arity: edges.len(),
                rows: probs.len(),
            });
        }
        for &p in &probs {
            if !(0.0..=1.0 + NORMALIZATION_TOLERANCE).contains(&p) || p.is_nan() {
                return Err(ProbError::InvalidProbability(p));
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-3 {
            return Err(ProbError::NotNormalized { sum });
        }
        // The edge order defines the bit positions, so sorting the edges
        // requires permuting the masks accordingly.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..edges.len()).collect();
            idx.sort_by_key(|&i| edges[i]);
            idx
        };
        let mut sorted_edges: Vec<EdgeId> = order.iter().map(|&i| edges[i]).collect();
        let mut permuted = vec![0.0; probs.len()];
        for (mask, &p) in probs.iter().enumerate() {
            let mut new_mask = 0usize;
            for (new_bit, &old_bit) in order.iter().enumerate() {
                if mask & (1 << old_bit) != 0 {
                    new_mask |= 1 << new_bit;
                }
            }
            permuted[new_mask] += p;
        }
        std::mem::swap(&mut edges, &mut sorted_edges);
        let mut table = JointProbTable {
            edges,
            probs: permuted,
        };
        table.normalize();
        Ok(table)
    }

    /// Builds the product distribution of independent edges with the given
    /// presence probabilities.
    pub fn independent(edge_probs: &[(EdgeId, f64)]) -> Result<Self, ProbError> {
        if edge_probs.is_empty() {
            return Err(ProbError::EmptyTable);
        }
        for &(_, p) in edge_probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ProbError::InvalidProbability(p));
            }
        }
        let k = edge_probs.len();
        if k > MAX_ARITY {
            return Err(ProbError::ArityTooLarge(k));
        }
        let edges: Vec<EdgeId> = edge_probs.iter().map(|&(e, _)| e).collect();
        let mut probs = vec![0.0; 1 << k];
        for (mask, slot) in probs.iter_mut().enumerate() {
            let mut p = 1.0;
            for (bit, &(_, pe)) in edge_probs.iter().enumerate() {
                p *= if mask & (1 << bit) != 0 { pe } else { 1.0 - pe };
            }
            *slot = p;
        }
        Self::new(edges, probs)
    }

    /// Builds a table with the paper's STRING construction (Section 6):
    /// `Pr(x_ne) = max_i Pr(x_i)` where `Pr(x_i)` is the marginal term of edge
    /// `i` under the assignment (`p_i` if present, `1 - p_i` otherwise), then
    /// normalised over the `2^|ne|` assignments.  The resulting distribution is
    /// dominated by the strongest interaction of the group (as reported in
    /// \[9\]) and is genuinely correlated: the joint presence probability
    /// differs from the product of the marginals.
    pub fn from_max_rule(edge_probs: &[(EdgeId, f64)]) -> Result<Self, ProbError> {
        if edge_probs.is_empty() {
            return Err(ProbError::EmptyTable);
        }
        for &(_, p) in edge_probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ProbError::InvalidProbability(p));
            }
        }
        let k = edge_probs.len();
        if k > MAX_ARITY {
            return Err(ProbError::ArityTooLarge(k));
        }
        let edges: Vec<EdgeId> = edge_probs.iter().map(|&(e, _)| e).collect();
        let mut probs = vec![0.0; 1 << k];
        for (mask, slot) in probs.iter_mut().enumerate() {
            let mut best: f64 = 0.0;
            for (bit, &(_, pe)) in edge_probs.iter().enumerate() {
                let term = if mask & (1 << bit) != 0 { pe } else { 1.0 - pe };
                best = best.max(term);
            }
            *slot = best;
        }
        let sum: f64 = probs.iter().sum();
        if sum <= 0.0 {
            return Err(ProbError::NotNormalized { sum });
        }
        for p in &mut probs {
            *p /= sum;
        }
        Self::new(edges, probs)
    }

    fn normalize(&mut self) {
        let sum: f64 = self.probs.iter().sum();
        if sum > 0.0 {
            for p in &mut self.probs {
                *p /= sum;
            }
        }
    }

    /// The edges (variables) of the table, sorted ascending.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of variables.
    pub fn arity(&self) -> usize {
        self.edges.len()
    }

    /// Number of stored rows (`2^arity`).
    pub fn rows(&self) -> usize {
        self.probs.len()
    }

    /// Raw row probabilities indexed by assignment mask.
    pub fn row_probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// Bit position of `edge` within this table, if present.
    pub fn position_of(&self, edge: EdgeId) -> Option<usize> {
        self.edges.binary_search(&edge).ok()
    }

    /// True if the table contains the edge variable.
    pub fn covers(&self, edge: EdgeId) -> bool {
        self.position_of(edge).is_some()
    }

    /// Probability of one full assignment given as a bitmask.
    pub fn prob_of_mask(&self, mask: u32) -> f64 {
        self.probs[mask as usize & (self.probs.len() - 1)]
    }

    /// Probability of the partial assignment `constraint` (edges not mentioned
    /// are summed over).  Edges in the constraint that do not belong to this
    /// table are ignored — the caller is responsible for routing constraints to
    /// the right tables.
    pub fn marginal(&self, constraint: &[(EdgeId, bool)]) -> f64 {
        let mut fixed_mask = 0u32;
        let mut fixed_value = 0u32;
        for &(e, present) in constraint {
            if let Some(bit) = self.position_of(e) {
                fixed_mask |= 1 << bit;
                if present {
                    fixed_value |= 1 << bit;
                }
            }
        }
        if fixed_mask == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for (mask, &p) in self.probs.iter().enumerate() {
            if (mask as u32) & fixed_mask == fixed_value {
                total += p;
            }
        }
        total
    }

    /// Marginal probability that all of `subset` (∩ this table's edges) are
    /// present.
    pub fn marginal_all_present(&self, subset: &[EdgeId]) -> f64 {
        let constraint: Vec<(EdgeId, bool)> = subset
            .iter()
            .filter(|e| self.covers(**e))
            .map(|&e| (e, true))
            .collect();
        self.marginal(&constraint)
    }

    /// Marginal presence probability of a single edge (1.0 if the edge is not
    /// a variable of this table).
    pub fn edge_marginal(&self, edge: EdgeId) -> f64 {
        self.marginal(&[(edge, true)])
    }

    /// Samples one assignment (as a bitmask over this table's bit positions).
    pub fn sample_mask<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let mut x: f64 = rng.gen();
        for (mask, &p) in self.probs.iter().enumerate() {
            if x < p {
                return mask as u32;
            }
            x -= p;
        }
        (self.probs.len() - 1) as u32
    }

    /// Bitmask (over this table's bit positions) of the given edges; edges
    /// outside the table are ignored.  Precomputing this once per
    /// `(embedding, table)` pair is what lets the verification sampler avoid
    /// re-scanning an `(EdgeId, bool)` constraint slice on every draw.
    pub fn presence_mask(&self, edges: &[EdgeId]) -> u32 {
        let mut mask = 0u32;
        for &e in edges {
            if let Some(bit) = self.position_of(e) {
                mask |= 1 << bit;
            }
        }
        mask
    }

    /// Resolves a partial-assignment constraint into `(fixed_mask,
    /// fixed_value)` bit pairs over this table's positions (entries referring
    /// to foreign edges are ignored).
    pub fn resolve_constraint(&self, constraint: &[(EdgeId, bool)]) -> (u32, u32) {
        let mut fixed_mask = 0u32;
        let mut fixed_value = 0u32;
        for &(e, present) in constraint {
            if let Some(bit) = self.position_of(e) {
                fixed_mask |= 1 << bit;
                if present {
                    fixed_value |= 1 << bit;
                }
            }
        }
        (fixed_mask, fixed_value)
    }

    /// Marginal distribution over a subset of this table's bit positions.
    ///
    /// `keep[i]` is a bit position of this table; the result has `2^keep.len()`
    /// entries where entry `m` is the total probability of all rows whose
    /// restriction to `keep` (bit `i` of `m` ⇔ bit `keep[i]` of the row) equals
    /// `m`.  Under the partitioned model this is exactly the distribution the
    /// union event sees when only the `keep` edges of the table are relevant.
    pub fn marginal_rows(&self, keep: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(1usize << keep.len());
        self.marginal_rows_into(keep, &mut out);
        out
    }

    /// [`Self::marginal_rows`], appended onto the end of `out` instead of
    /// returning a fresh allocation — the projection layer packs every touched
    /// table's marginal into one contiguous per-candidate arena this way.
    /// Returns the offset of the appended block within `out`.
    pub fn marginal_rows_into(&self, keep: &[usize], out: &mut Vec<f64>) -> usize {
        let start = out.len();
        out.resize(start + (1usize << keep.len()), 0.0);
        let block = &mut out[start..];
        for (row, &p) in self.probs.iter().enumerate() {
            let mut sub = 0usize;
            for (i, &bit) in keep.iter().enumerate() {
                if row & (1usize << bit) != 0 {
                    sub |= 1 << i;
                }
            }
            block[sub] += p;
        }
        start
    }

    /// Samples one assignment conditioned on a partial assignment (rows
    /// inconsistent with `constraint` are excluded and the rest renormalised).
    /// Constraint entries referring to edges outside this table are ignored.
    /// If the constraint has probability zero the constraint is still honoured
    /// and the remaining variables are sampled uniformly.
    pub fn sample_mask_conditioned<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        constraint: &[(EdgeId, bool)],
    ) -> u32 {
        let (fixed_mask, fixed_value) = self.resolve_constraint(constraint);
        self.sample_mask_fixed(rng, fixed_mask, fixed_value)
    }

    /// Samples one assignment with the constraint already resolved into
    /// `(fixed_mask, fixed_value)` bits (see [`Self::resolve_constraint`]);
    /// the repeated-sampling path of the verification engine resolves the
    /// constraint once and calls this in the loop.
    pub fn sample_mask_fixed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        fixed_mask: u32,
        fixed_value: u32,
    ) -> u32 {
        if fixed_mask == 0 {
            return self.sample_mask(rng);
        }
        let total: f64 = self
            .probs
            .iter()
            .enumerate()
            .filter(|(mask, _)| (*mask as u32) & fixed_mask == fixed_value)
            .map(|(_, &p)| p)
            .sum();
        if total <= 0.0 {
            // Degenerate conditioning: honour the fixed bits, leave the free
            // bits at their unconditioned most-likely row.
            let best = self
                .probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(mask, _)| mask as u32)
                .unwrap_or(0);
            return (best & !fixed_mask) | fixed_value;
        }
        let mut x: f64 = rng.gen::<f64>() * total;
        for (mask, &p) in self.probs.iter().enumerate() {
            if (mask as u32) & fixed_mask != fixed_value {
                continue;
            }
            if x < p {
                return mask as u32;
            }
            x -= p;
        }
        fixed_value
    }

    /// Samples one assignment as `(edge, present)` pairs.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<(EdgeId, bool)> {
        let mask = self.sample_mask(rng);
        self.edges
            .iter()
            .enumerate()
            .map(|(bit, &e)| (e, mask & (1 << bit) != 0))
            .collect()
    }

    /// Shannon entropy of the table in bits (used by dataset diagnostics).
    pub fn entropy_bits(&self) -> f64 {
        self.probs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// Replaces this correlated table by the product of its single-edge
    /// marginals (used to build the IND baseline model).
    pub fn to_independent(&self) -> JointProbTable {
        let edge_probs: Vec<(EdgeId, f64)> = self
            .edges
            .iter()
            .map(|&e| (e, self.edge_marginal(e)))
            .collect();
        // pgs-lint: allow(panic-in-library, marginals of a validated table are probabilities in [0, 1])
        JointProbTable::independent(&edge_probs).expect("marginals of a valid table are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    /// JPT of graph 001 in Figure 1 (the 8-row table): variables e1,e2,e3 with
    /// Pr(1,1,1)=0.2, Pr(1,1,0)=0.2, Pr(1,0,1)=0.1, Pr(1,0,0)=0.1,
    /// Pr(0,1,1)=0.1, Pr(0,1,0)=0.1, Pr(0,0,1)=0.1, Pr(0,0,0)=0.1.
    fn figure1_jpt() -> JointProbTable {
        // bit0 = e1, bit1 = e2, bit2 = e3; mask value = e1 + 2*e2 + 4*e3
        let mut probs = vec![0.0; 8];
        probs[0b111] = 0.2;
        probs[0b011] = 0.2; // e1=1,e2=1,e3=0
        probs[0b101] = 0.1; // e1=1,e2=0,e3=1
        probs[0b001] = 0.1;
        probs[0b110] = 0.1;
        probs[0b010] = 0.1;
        probs[0b100] = 0.1;
        probs[0b000] = 0.1;
        JointProbTable::new(vec![e(1), e(2), e(3)], probs).unwrap()
    }

    #[test]
    fn figure1_marginals() {
        let t = figure1_jpt();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.rows(), 8);
        // Pr(e1=1,e2=1,e3=0) = 0.2 as in the running example.
        let p = t.marginal(&[(e(1), true), (e(2), true), (e(3), false)]);
        assert!((p - 0.2).abs() < 1e-12);
        // Pr(e1=1) = 0.2+0.2+0.1+0.1 = 0.6
        assert!((t.edge_marginal(e(1)) - 0.6).abs() < 1e-12);
        // Pr(e3=1) = 0.2+0.1+0.1+0.1 = 0.5
        assert!((t.edge_marginal(e(3)) - 0.5).abs() < 1e-12);
        // Pr(all present) = 0.2
        assert!((t.marginal_all_present(&[e(1), e(2), e(3)]) - 0.2).abs() < 1e-12);
        // Unknown edges are ignored in constraints.
        assert!((t.marginal(&[(e(9), true)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            JointProbTable::new(vec![], vec![]).unwrap_err(),
            ProbError::EmptyTable
        );
        assert!(matches!(
            JointProbTable::new(vec![e(0)], vec![0.5, 0.4, 0.1]).unwrap_err(),
            ProbError::WrongTableSize { .. }
        ));
        assert!(matches!(
            JointProbTable::new(vec![e(0)], vec![0.5, -0.5]).unwrap_err(),
            ProbError::InvalidProbability(_)
        ));
        assert!(matches!(
            JointProbTable::new(vec![e(0)], vec![0.2, 0.2]).unwrap_err(),
            ProbError::NotNormalized { .. }
        ));
        assert!(matches!(
            JointProbTable::new(vec![e(0), e(0)], vec![0.25; 4]).unwrap_err(),
            ProbError::WrongTableSize { .. }
        ));
        let too_many: Vec<EdgeId> = (0..20).map(e).collect();
        assert!(matches!(
            JointProbTable::new(too_many, vec![0.0; 1 << 20]).unwrap_err(),
            ProbError::ArityTooLarge(20)
        ));
    }

    #[test]
    fn edge_order_is_canonicalised() {
        // Same distribution expressed with edges in a different order must
        // produce identical marginals.
        let t1 = JointProbTable::independent(&[(e(3), 0.3), (e(1), 0.8)]).unwrap();
        let t2 = JointProbTable::independent(&[(e(1), 0.8), (e(3), 0.3)]).unwrap();
        assert_eq!(t1.edges(), t2.edges());
        for c in [
            vec![(e(1), true), (e(3), true)],
            vec![(e(1), true), (e(3), false)],
            vec![(e(1), false)],
        ] {
            assert!((t1.marginal(&c) - t2.marginal(&c)).abs() < 1e-12);
        }
    }

    #[test]
    fn independent_table_matches_product() {
        let t = JointProbTable::independent(&[(e(0), 0.25), (e(1), 0.5)]).unwrap();
        assert!((t.marginal_all_present(&[e(0), e(1)]) - 0.125).abs() < 1e-12);
        assert!((t.edge_marginal(e(0)) - 0.25).abs() < 1e-12);
        assert!((t.edge_marginal(e(1)) - 0.5).abs() < 1e-12);
        let sum: f64 = t.row_probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_rule_produces_a_correlated_distribution() {
        // The max rule yields a genuine joint distribution: normalised, and with
        // a joint presence probability that differs from the product of its
        // marginals (i.e. the edges are NOT independent).
        let t = JointProbTable::from_max_rule(&[(e(0), 0.9), (e(1), 0.9)]).unwrap();
        let joint = t.marginal_all_present(&[e(0), e(1)]);
        let product = t.edge_marginal(e(0)) * t.edge_marginal(e(1));
        assert!(
            (joint - product).abs() > 1e-6,
            "max-rule table must be correlated: joint {joint}, product {product}"
        );
        let sum: f64 = t.row_probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // All four assignments keep strictly positive probability.
        assert!(t.row_probabilities().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn to_independent_preserves_marginals_but_drops_correlation() {
        let t = JointProbTable::from_max_rule(&[(e(0), 0.8), (e(1), 0.6)]).unwrap();
        let ind = t.to_independent();
        for edge in [e(0), e(1)] {
            assert!((t.edge_marginal(edge) - ind.edge_marginal(edge)).abs() < 1e-9);
        }
        let joint_cor = t.marginal_all_present(&[e(0), e(1)]);
        let joint_ind = ind.marginal_all_present(&[e(0), e(1)]);
        assert!((joint_ind - ind.edge_marginal(e(0)) * ind.edge_marginal(e(1))).abs() < 1e-9);
        assert!(joint_cor != joint_ind);
    }

    #[test]
    fn sampling_frequencies_match_distribution() {
        let t = figure1_jpt();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 40_000;
        let mut count_e1 = 0usize;
        let mut count_all = 0usize;
        for _ in 0..n {
            let assignment = t.sample(&mut rng);
            let lookup = |edge: EdgeId| assignment.iter().find(|(x, _)| *x == edge).unwrap().1;
            if lookup(e(1)) {
                count_e1 += 1;
            }
            if lookup(e(1)) && lookup(e(2)) && lookup(e(3)) {
                count_all += 1;
            }
        }
        let f1 = count_e1 as f64 / n as f64;
        let fall = count_all as f64 / n as f64;
        assert!((f1 - 0.6).abs() < 0.02, "Pr(e1) estimate {f1}");
        assert!((fall - 0.2).abs() < 0.02, "Pr(all) estimate {fall}");
    }

    #[test]
    fn conditioned_sampling_respects_constraint_and_distribution() {
        let t = figure1_jpt();
        let mut rng = StdRng::seed_from_u64(7);
        let constraint = vec![(e(1), true)];
        let n = 20_000;
        let mut count_e2 = 0usize;
        for _ in 0..n {
            let mask = t.sample_mask_conditioned(&mut rng, &constraint);
            let bit_e1 = t.position_of(e(1)).unwrap();
            assert!(mask & (1 << bit_e1) != 0, "constraint e1=1 must hold");
            let bit_e2 = t.position_of(e(2)).unwrap();
            if mask & (1 << bit_e2) != 0 {
                count_e2 += 1;
            }
        }
        // Pr(e2=1 | e1=1) = (0.2+0.2)/0.6 = 2/3.
        let freq = count_e2 as f64 / n as f64;
        assert!(
            (freq - 2.0 / 3.0).abs() < 0.02,
            "conditional frequency {freq}"
        );
        // Constraint on an edge outside the table falls back to plain sampling.
        let mask = t.sample_mask_conditioned(&mut rng, &[(e(42), true)]);
        assert!(mask < 8);
        // Zero-probability conditioning still honours the fixed bits.
        let det = JointProbTable::new(vec![e(0), e(1)], vec![0.0, 0.0, 0.0, 1.0]).unwrap();
        let mask = det.sample_mask_conditioned(&mut rng, &[(e(0), false)]);
        assert_eq!(mask & 1, 0);
    }

    #[test]
    fn presence_mask_and_resolve_constraint() {
        let t = figure1_jpt();
        // Edges e1,e2,e3 occupy bits 0,1,2 after canonicalisation.
        assert_eq!(t.presence_mask(&[e(1), e(3)]), 0b101);
        // Foreign edges are ignored.
        assert_eq!(t.presence_mask(&[e(9)]), 0);
        assert_eq!(t.presence_mask(&[]), 0);
        let (m, v) = t.resolve_constraint(&[(e(1), true), (e(2), false), (e(9), true)]);
        assert_eq!(m, 0b011);
        assert_eq!(v, 0b001);
    }

    #[test]
    fn marginal_rows_marginalise_dropped_bits() {
        let t = figure1_jpt();
        // Keep only bit 0 (edge e1): the two rows are Pr(e1=0) and Pr(e1=1).
        let rows = t.marginal_rows(&[0]);
        assert_eq!(rows.len(), 2);
        assert!((rows[1] - t.edge_marginal(e(1))).abs() < 1e-12);
        assert!((rows[0] + rows[1] - 1.0).abs() < 1e-12);
        // Keep bits (2, 0) in swapped order: entry 0b01 means e3=1, e1=0.
        let rows = t.marginal_rows(&[2, 0]);
        assert_eq!(rows.len(), 4);
        let expect = t.marginal(&[(e(3), true), (e(1), false)]);
        assert!((rows[0b01] - expect).abs() < 1e-12);
        // Keeping every bit reproduces the table.
        let rows = t.marginal_rows(&[0, 1, 2]);
        for (m, &p) in t.row_probabilities().iter().enumerate() {
            assert!((rows[m] - p).abs() < 1e-12);
        }
        // Keeping nothing leaves the single empty assignment of mass 1.
        let rows = t.marginal_rows(&[]);
        assert_eq!(rows.len(), 1);
        assert!((rows[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_mask_fixed_matches_conditioned_sampling() {
        let t = figure1_jpt();
        let constraint = vec![(e(1), true), (e(3), false)];
        let (m, v) = t.resolve_constraint(&constraint);
        let mut a = StdRng::seed_from_u64(31);
        let mut b = StdRng::seed_from_u64(31);
        for _ in 0..256 {
            assert_eq!(
                t.sample_mask_conditioned(&mut a, &constraint),
                t.sample_mask_fixed(&mut b, m, v)
            );
        }
    }

    #[test]
    fn entropy_of_uniform_table() {
        let t = JointProbTable::new(vec![e(0), e(1)], vec![0.25; 4]).unwrap();
        assert!((t.entropy_bits() - 2.0).abs() < 1e-12);
        let det = JointProbTable::new(vec![e(0)], vec![0.0, 1.0]).unwrap();
        assert!(det.entropy_bits().abs() < 1e-12);
    }
}
