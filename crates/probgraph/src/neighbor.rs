//! Neighbor-edge-set construction.
//!
//! Definition 1: a set of edges are *neighbor edges* if they are incident to
//! the same vertex or form a triangle.  The probabilistic model attaches one
//! JPT to each neighbor-edge set; this module (a) partitions a skeleton's edge
//! set into neighbor-edge groups (the partition form required by
//! [`crate::model::ProbabilisticGraph`], see the crate-level docs for why), and
//! (b) validates that a given group really is a neighbor-edge set.

use pgs_graph::model::{EdgeId, Graph};
use pgs_graph::traversal::triangles;

/// True if `edges` is a valid neighbor-edge set in `g`: a single edge, a set of
/// edges all incident to one common vertex, or the three edges of a triangle.
pub fn is_neighbor_edge_set(g: &Graph, edges: &[EdgeId]) -> bool {
    match edges.len() {
        0 => false,
        1 => true,
        _ => {
            // Common vertex?
            let first = g.edge(edges[0]);
            for &v in &[first.u, first.v] {
                if edges.iter().all(|&e| g.edge(e).touches(v)) {
                    return true;
                }
            }
            // Triangle?
            if edges.len() == 3 {
                let mut sorted: Vec<EdgeId> = edges.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() == 3 {
                    return triangles(g).into_iter().any(|t| t.to_vec() == sorted);
                }
            }
            false
        }
    }
}

/// Partitions the edge set of `g` into neighbor-edge groups of size at most
/// `max_group_size` (≥ 1).
///
/// Strategy: iterate vertices in descending degree order; at each vertex, take
/// the not-yet-assigned incident edges in chunks of `max_group_size` (all of
/// them share that vertex, so every chunk is a neighbor-edge set).  Any edge
/// whose endpoints were exhausted earlier ends up in a singleton group, which
/// is trivially valid.  The union of the groups is exactly the edge set and the
/// groups are pairwise disjoint.
pub fn partition_neighbor_edges(g: &Graph, max_group_size: usize) -> Vec<Vec<EdgeId>> {
    let cap = max_group_size.max(1);
    let mut assigned = vec![false; g.edge_count()];
    let mut groups: Vec<Vec<EdgeId>> = Vec::new();
    let mut vertices: Vec<_> = g.vertices().collect();
    vertices.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for v in vertices {
        let unassigned: Vec<EdgeId> = g
            .incident_edges(v)
            .filter(|e| !assigned[e.index()])
            .collect();
        for chunk in unassigned.chunks(cap) {
            let mut group: Vec<EdgeId> = chunk.to_vec();
            group.sort_unstable();
            for &e in &group {
                assigned[e.index()] = true;
            }
            groups.push(group);
        }
    }
    groups
}

/// Partitions preferring triangles: triangles whose three edges are all still
/// unassigned become 3-edge groups first (capturing the strongest correlation
/// structure), then the remaining edges are grouped per vertex as in
/// [`partition_neighbor_edges`].
pub fn partition_with_triangles(g: &Graph, max_group_size: usize) -> Vec<Vec<EdgeId>> {
    let cap = max_group_size.max(1);
    let mut assigned = vec![false; g.edge_count()];
    let mut groups: Vec<Vec<EdgeId>> = Vec::new();
    if cap >= 3 {
        for tri in triangles(g) {
            if tri.iter().all(|e| !assigned[e.index()]) {
                for e in &tri {
                    assigned[e.index()] = true;
                }
                groups.push(tri.to_vec());
            }
        }
    }
    let mut vertices: Vec<_> = g.vertices().collect();
    vertices.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for v in vertices {
        let unassigned: Vec<EdgeId> = g
            .incident_edges(v)
            .filter(|e| !assigned[e.index()])
            .collect();
        for chunk in unassigned.chunks(cap) {
            let mut group: Vec<EdgeId> = chunk.to_vec();
            group.sort_unstable();
            for &e in &group {
                assigned[e.index()] = true;
            }
            groups.push(group);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgs_graph::model::GraphBuilder;

    fn graph_002() -> Graph {
        // Figure 1 graph 002: a-a-b triangle plus pendant b and c on the b vertex.
        GraphBuilder::new()
            .vertices(&[0, 0, 1, 1, 2])
            .edge(0, 1, 9) // e0
            .edge(0, 2, 9) // e1
            .edge(1, 2, 9) // e2
            .edge(2, 3, 9) // e3
            .edge(2, 4, 9) // e4
            .build()
    }

    #[test]
    fn neighbor_set_validation() {
        let g = graph_002();
        // Edges sharing vertex v2: e1,e2,e3,e4.
        assert!(is_neighbor_edge_set(
            &g,
            &[EdgeId(1), EdgeId(2), EdgeId(3), EdgeId(4)]
        ));
        // Triangle e0,e1,e2 (the paper's {e1,e2,e3} of graph 002).
        assert!(is_neighbor_edge_set(&g, &[EdgeId(0), EdgeId(1), EdgeId(2)]));
        // Single edge.
        assert!(is_neighbor_edge_set(&g, &[EdgeId(3)]));
        // e0 (v0-v1) and e3 (v2-v3) share nothing.
        assert!(!is_neighbor_edge_set(&g, &[EdgeId(0), EdgeId(3)]));
        // Empty set is not valid.
        assert!(!is_neighbor_edge_set(&g, &[]));
    }

    fn assert_is_partition(g: &Graph, groups: &[Vec<EdgeId>]) {
        let mut seen = vec![false; g.edge_count()];
        for group in groups {
            assert!(!group.is_empty());
            assert!(is_neighbor_edge_set(g, group), "group {group:?} invalid");
            for &e in group {
                assert!(!seen[e.index()], "edge {e} assigned twice");
                seen[e.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some edge not covered");
    }

    #[test]
    fn partition_covers_each_edge_once() {
        let g = graph_002();
        for cap in [1usize, 2, 3, 4, 8] {
            let groups = partition_neighbor_edges(&g, cap);
            assert_is_partition(&g, &groups);
            assert!(groups.iter().all(|grp| grp.len() <= cap));
        }
    }

    #[test]
    fn partition_with_cap_one_is_all_singletons() {
        let g = graph_002();
        let groups = partition_neighbor_edges(&g, 1);
        assert_eq!(groups.len(), g.edge_count());
    }

    #[test]
    fn triangle_preferring_partition() {
        let g = graph_002();
        let groups = partition_with_triangles(&g, 3);
        assert_is_partition(&g, &groups);
        // The triangle e0,e1,e2 must form one group.
        assert!(groups
            .iter()
            .any(|grp| grp == &vec![EdgeId(0), EdgeId(1), EdgeId(2)]));
    }

    #[test]
    fn triangle_partition_degrades_gracefully_with_small_cap() {
        let g = graph_002();
        let groups = partition_with_triangles(&g, 2);
        assert_is_partition(&g, &groups);
        assert!(groups.iter().all(|grp| grp.len() <= 2));
    }

    #[test]
    fn partition_on_larger_random_graph() {
        use pgs_graph::generate::{random_connected_graph, RandomGraphConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_connected_graph(
            &RandomGraphConfig {
                vertices: 60,
                edges: 120,
                vertex_labels: 5,
                edge_labels: 2,
                preferential: true,
            },
            &mut rng,
        );
        let groups = partition_with_triangles(&g, 3);
        assert_is_partition(&g, &groups);
    }

    #[test]
    fn empty_graph_has_no_groups() {
        let g = Graph::new();
        assert!(partition_neighbor_edges(&g, 3).is_empty());
        assert!(partition_with_triangles(&g, 3).is_empty());
    }
}
