//! Protein–protein interaction (PPI) similarity search — the paper's motivating
//! bioinformatics scenario.
//!
//! A STRING-like dataset of probabilistic PPI networks is synthesised (each
//! network belongs to one "organism"), a pathway-sized query motif is extracted
//! from one organism, and the T-PS query is used to retrieve the networks that
//! contain the motif with high probability.  The example then reports
//! precision/recall against the organism ground truth for the correlated (COR)
//! and the independent (IND) edge models — the comparison behind Figure 14.
//!
//! Run with: `cargo run --release --example ppi_similarity`

use pgs::datagen::ppi::CorrelationModel;
use pgs::datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs::prelude::*;
use pgs::prob::independent::to_independent_model;

fn main() {
    // A small organism-structured PPI dataset (see DESIGN.md for why synthetic
    // data substitutes the STRING extract).
    let config = PpiDatasetConfig {
        graph_count: 40,
        vertices_per_graph: 14,
        edges_per_graph: 20,
        vertex_label_count: 8,
        organism_count: 4,
        perturbation: 0.25,
        correlation: CorrelationModel::MaxRule,
        seed: 2012,
        ..PpiDatasetConfig::default()
    };
    let dataset = generate_ppi_dataset(&config);
    println!(
        "generated {} PPI networks over {} organisms (mean edge probability {:.3})",
        dataset.graphs.len(),
        config.organism_count,
        dataset.mean_edge_probability()
    );

    // Query motifs: size-5 connected subgraphs extracted from dataset graphs.
    let workload = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 5,
            count: 8,
            seed: 7,
        },
    );

    // Two databases: the correlated model and its independent counterpart.
    let mut cor_db = ProbGraphDatabase::new();
    cor_db.extend(dataset.graphs.iter().cloned());
    cor_db.build_index();
    let mut ind_db = ProbGraphDatabase::new();
    ind_db.extend(dataset.graphs.iter().map(to_independent_model));
    ind_db.build_index();

    // ε is calibrated to the dataset: with a STRING-like mean edge probability
    // of 0.383, a 5-edge motif at δ = 1 needs 4 edges jointly present, so even
    // a perfect match has SSP around 0.383^4 ≈ 0.02 under independence (more
    // under positive correlation).  Larger thresholds retrieve nothing.
    let epsilon = 0.05;
    let delta = 1;
    let params = QueryParams {
        epsilon,
        delta,
        variant: PruningVariant::OptSspBound,
    };
    // The whole workload goes through `query_batch`: thread spawns are
    // amortised across the queries and each answer is byte-identical to a
    // standalone `query` call (per-candidate seeded RNGs).
    let query_graphs: Vec<Graph> = workload.iter().map(|wq| wq.graph.clone()).collect();
    // Organism ground truth depends only on the query, not on the database.
    let truths: Vec<Vec<usize>> = workload
        .iter()
        .map(|wq| {
            dataset
                .organism_of
                .iter()
                .enumerate()
                .filter(|(_, &o)| o == wq.source_organism)
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    println!("\nbatched retrieval (ε = {epsilon}, δ = {delta}):");
    let mut cor_scores = (0.0, 0.0);
    let mut ind_scores = (0.0, 0.0);
    for (db, scores, label) in [
        (&cor_db, &mut cor_scores, "COR"),
        (&ind_db, &mut ind_scores, "IND"),
    ] {
        let batch = db
            .query_batch(&query_graphs, &params)
            .expect("query succeeds");
        println!(
            "  {label}: {} queries in {:.3}s ({:.1} queries/sec, {:.3} CPU-seconds in verification)",
            batch.results.len(),
            batch.wall_seconds,
            batch.queries_per_second(),
            batch.stats.verification_seconds,
        );
        for (truth, result) in truths.iter().zip(&batch.results) {
            let hit = result.answers.iter().filter(|a| truth.contains(a)).count() as f64;
            let precision = if result.answers.is_empty() {
                1.0
            } else {
                hit / result.answers.len() as f64
            };
            let recall = hit / truth.len() as f64;
            scores.0 += precision;
            scores.1 += recall;
        }
    }
    let n = workload.len().max(1) as f64;
    println!(
        "\nquery quality over {} motif queries (ε = {epsilon}, δ = {delta}):",
        workload.len()
    );
    println!(
        "  correlated model (COR):  precision {:.2}  recall {:.2}",
        cor_scores.0 / n,
        cor_scores.1 / n
    );
    println!(
        "  independent model (IND): precision {:.2}  recall {:.2}",
        ind_scores.0 / n,
        ind_scores.1 / n
    );

    // Show one query in detail.
    if let Some(wq) = workload.first() {
        let detailed = cor_db
            .query_detailed(
                &wq.graph,
                &QueryParams {
                    epsilon,
                    delta,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .expect("query succeeds");
        println!(
            "\nexample query ({} edges, organism {}): {} answers; \
             structural candidates {}, pruned by upper bound {}, accepted by lower bound {}, verified {}",
            wq.graph.edge_count(),
            wq.source_organism,
            detailed.answers.len(),
            detailed.stats.structural_candidates,
            detailed.stats.pruned_by_upper,
            detailed.stats.accepted_by_lower,
            detailed.stats.verified,
        );
    }
}
