//! Quickstart: build a small probabilistic graph database by hand, index it,
//! and run a threshold-based probabilistic subgraph similarity (T-PS) query.
//!
//! This reproduces the running example of the paper (Figure 1): a database
//! with two probabilistic graphs and a triangle query, asking which graphs
//! match the query within subgraph distance 1 with probability at least 0.4.
//!
//! Run with: `cargo run --example quickstart`

use pgs::prelude::*;
use pgs_graph::model::EdgeId;

fn main() {
    // ---------------------------------------------------------------- graph 001
    // A triangle a-b-d whose three edges form one neighbor-edge set with a
    // joint probability table (correlated edges).
    let g001 = GraphBuilder::new()
        .name("001")
        .vertices(&[0, 1, 3]) // labels: a=0, b=1, d=3
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build();
    let jpt001 =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.65), (EdgeId(1), 0.55), (EdgeId(2), 0.70)])
            .expect("valid JPT");
    let pg001 =
        ProbabilisticGraph::new(g001, vec![jpt001], true).expect("valid probabilistic graph");

    // ---------------------------------------------------------------- graph 002
    // The 5-edge graph of Figure 1: a triangle {a, a, b} plus pendant b and c
    // vertices, with two joint probability tables.
    let g002 = GraphBuilder::new()
        .name("002")
        .vertices(&[0, 0, 1, 1, 2]) // a, a, b, b, c
        .edge(0, 1, 9)
        .edge(0, 2, 9)
        .edge(1, 2, 9)
        .edge(2, 3, 9)
        .edge(2, 4, 9)
        .build();
    let jpt_triangle =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.70), (EdgeId(1), 0.60), (EdgeId(2), 0.80)])
            .expect("valid JPT");
    let jpt_pendant =
        JointProbTable::from_max_rule(&[(EdgeId(3), 0.50), (EdgeId(4), 0.40)]).expect("valid JPT");
    let pg002 = ProbabilisticGraph::new(g002, vec![jpt_triangle, jpt_pendant], true)
        .expect("valid probabilistic graph");

    // ---------------------------------------------------------------- database
    let mut db = ProbGraphDatabase::new();
    db.insert(pg001);
    db.insert(pg002);
    db.build_index();
    println!(
        "database: {} probabilistic graphs, PMI with {} features",
        db.len(),
        db.engine().expect("index built").pmi().features().len()
    );

    // ---------------------------------------------------------------- query
    // The query q of Figure 1: a triangle with vertex labels a, b, c.
    let q = GraphBuilder::new()
        .name("q")
        .vertices(&[0, 1, 2])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build();

    for (epsilon, delta) in [(0.4, 1usize), (0.4, 2), (0.7, 2)] {
        let result = db
            .query_detailed(
                &q,
                &QueryParams {
                    epsilon,
                    delta,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .expect("query succeeds");
        let names: Vec<&str> = result
            .answers
            .iter()
            .map(|&i| db.graph(i).expect("valid index").name())
            .collect();
        println!(
            "T-PS(ε = {epsilon}, δ = {delta}): {} answer(s) {:?} \
             [structural candidates: {}, pruned: {}, accepted by bounds: {}, verified: {}]",
            result.answers.len(),
            names,
            result.stats.structural_candidates,
            result.stats.pruned_by_upper,
            result.stats.accepted_by_lower,
            result.stats.verified,
        );
    }

    // The exact SSP values, for reference (small graphs, exact computation).
    for (i, pg) in db.graphs().iter().enumerate() {
        for delta in [1usize, 2] {
            let ssp = pgs::prob::exact::exact_ssp(pg, &q, delta, 22).expect("small graph");
            println!(
                "exact Pr(q ⊆sim {}) at δ = {delta}: {ssp:.4}",
                db.graph(i).unwrap().name()
            );
        }
    }
}
