//! Uncertain RDF integration: SPARQL-like pattern matching over probabilistic
//! entity graphs.
//!
//! The paper lists RDF data management as a driving application: when several
//! sources are integrated into one knowledge graph, the extracted facts (edges)
//! carry confidence values, and facts extracted from the same entity by the
//! same source are correlated.  This example stores one probabilistic graph per
//! integrated data source snapshot, where vertices are typed entities (person,
//! organisation, city, product) and edges are typed relations (works_for,
//! located_in, produces, founded_by) with extraction confidences.  A basic
//! graph pattern (the graph form of a SPARQL query) is then evaluated as a T-PS
//! query: *which snapshots support the pattern with probability ≥ ε, allowing
//! δ missing triples?*
//!
//! Run with: `cargo run --example rdf_integration`

use pgs::prelude::*;
use pgs::prob::neighbor::partition_neighbor_edges;
use pgs_graph::model::EdgeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// Entity types (vertex labels).
const PERSON: u32 = 0;
const ORG: u32 = 1;
const CITY: u32 = 2;
const PRODUCT: u32 = 3;

// Relation types (edge labels).
const WORKS_FOR: u32 = 10;
const LOCATED_IN: u32 = 11;
const PRODUCES: u32 = 12;
const FOUNDED_BY: u32 = 13;

/// Builds one integrated snapshot with `quality` ∈ (0, 1] controlling the
/// extraction confidence of its triples.
fn snapshot(name: &str, orgs: usize, quality: f64, rng: &mut StdRng) -> ProbabilisticGraph {
    let mut g = Graph::with_name(name);
    let city = g.add_vertex(Label(CITY));
    for _ in 0..orgs {
        let org = g.add_vertex(Label(ORG));
        g.add_edge(org, city, Label(LOCATED_IN))
            .expect("unique edge");
        // Founder and a couple of employees.
        let founder = g.add_vertex(Label(PERSON));
        g.add_edge(org, founder, Label(FOUNDED_BY))
            .expect("unique edge");
        for _ in 0..rng.gen_range(1..=2) {
            let employee = g.add_vertex(Label(PERSON));
            g.add_edge(employee, org, Label(WORKS_FOR))
                .expect("unique edge");
        }
        // Products, sometimes.
        if rng.gen_bool(0.7) {
            let product = g.add_vertex(Label(PRODUCT));
            g.add_edge(org, product, Label(PRODUCES))
                .expect("unique edge");
        }
    }
    // Extraction confidences: higher-quality sources yield higher and less
    // variable probabilities; triples about the same entity share a JPT.
    let groups = partition_neighbor_edges(&g, 3);
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| {
            let probs: Vec<(EdgeId, f64)> = grp
                .iter()
                .map(|&e| {
                    let p = (0.55 + 0.4 * quality - rng.gen_range(0.0..0.25) * (1.0 - quality))
                        .clamp(0.05, 0.98);
                    (e, p)
                })
                .collect();
            JointProbTable::from_max_rule(&probs).expect("valid JPT")
        })
        .collect();
    ProbabilisticGraph::new(g, tables, true).expect("valid snapshot")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut db = ProbGraphDatabase::new();
    let sources = [
        ("curated-registry", 3, 0.95),
        ("news-extraction", 4, 0.55),
        ("web-crawl", 5, 0.30),
        ("partner-feed", 2, 0.85),
    ];
    for (name, orgs, quality) in sources {
        db.insert(snapshot(name, orgs, quality, &mut rng));
    }
    db.build_index();
    println!("indexed {} integrated snapshots", db.len());

    // Basic graph pattern (SPARQL-style):
    //   ?p works_for ?o .  ?o located_in ?c .  ?o produces ?prod .
    let pattern = GraphBuilder::new()
        .name("bgp-company-profile")
        .vertices(&[PERSON, ORG, CITY, PRODUCT])
        .edge(0, 1, WORKS_FOR)
        .edge(1, 2, LOCATED_IN)
        .edge(1, 3, PRODUCES)
        .build();

    for (epsilon, delta) in [(0.5, 0usize), (0.5, 1), (0.2, 1)] {
        let result = db
            .query_detailed(
                &pattern,
                &QueryParams {
                    epsilon,
                    delta,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .expect("query succeeds");
        let names: Vec<&str> = result
            .answers
            .iter()
            .map(|&i| db.graph(i).expect("valid index").name())
            .collect();
        println!(
            "BGP supported with Pr ≥ {epsilon} (δ = {delta}): {names:?} \
             [candidates after structural/probabilistic pruning: {}/{}]",
            result.stats.structural_candidates, result.stats.probabilistic_candidates,
        );
    }

    // Confidence report per source for the strict pattern (δ = 0).
    println!("\nper-source pattern confidence (δ = 0):");
    for pg in db.graphs() {
        let ssp = pgs::prob::exact::exact_ssp(pg, &pattern, 0, 22).unwrap_or(f64::NAN);
        println!("  {:<20} {ssp:.3}", pg.name());
    }
}
