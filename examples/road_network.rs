//! Road-network reliability: finding districts whose road grid supports a
//! routing pattern with high probability.
//!
//! The paper's introduction motivates correlated edge probabilities with
//! traffic: "a busy traffic path often blocks traffic in nearby paths".  This
//! example models a fleet operator that stores one probabilistic graph per city
//! district — vertices are intersections labelled by their type (junction,
//! roundabout, highway ramp), edges are road segments whose existence
//! probability is the chance the segment is passable during rush hour, and
//! segments meeting at the same intersection share a joint probability table
//! (congestion spills over).  A T-PS query asks: *which districts can realise a
//! given delivery-loop pattern with probability at least ε, tolerating at most
//! δ missing segments?*
//!
//! Run with: `cargo run --example road_network`

use pgs::prelude::*;
use pgs::prob::neighbor::partition_with_triangles;
use pgs_graph::model::EdgeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Intersection types.
const JUNCTION: u32 = 0;
const ROUNDABOUT: u32 = 1;
const RAMP: u32 = 2;

/// Builds one district: a ring road of `ring` roundabouts with junction spurs
/// and a couple of highway ramps; `congestion` scales how unreliable the
/// segments are during rush hour.
fn district(name: &str, ring: usize, congestion: f64, rng: &mut StdRng) -> ProbabilisticGraph {
    let mut g = Graph::with_name(name);
    // Ring of roundabouts.
    let ring_vertices: Vec<VertexId> = (0..ring).map(|_| g.add_vertex(Label(ROUNDABOUT))).collect();
    for i in 0..ring {
        let a = ring_vertices[i];
        let b = ring_vertices[(i + 1) % ring];
        if g.find_edge(a, b).is_none() {
            g.add_edge(a, b, Label(0)).expect("ring edges are unique");
        }
    }
    // Junction spurs hanging off the ring.
    for &r in &ring_vertices {
        let spur = g.add_vertex(Label(JUNCTION));
        g.add_edge(r, spur, Label(0)).expect("spur edge");
        if rng.gen_bool(0.5) {
            let second = g.add_vertex(Label(JUNCTION));
            g.add_edge(spur, second, Label(0))
                .expect("second spur edge");
        }
    }
    // Two highway ramps attached to opposite sides of the ring.
    for idx in [0, ring / 2] {
        let ramp = g.add_vertex(Label(RAMP));
        g.add_edge(ring_vertices[idx], ramp, Label(0))
            .expect("ramp edge");
    }

    // Passability probabilities: ring segments suffer most from congestion.
    let edge_prob = |e: EdgeId, g: &Graph, rng: &mut StdRng| -> f64 {
        let edge = g.edge(e);
        let on_ring = g.vertex_label(edge.u) == Label(ROUNDABOUT)
            && g.vertex_label(edge.v) == Label(ROUNDABOUT);
        let base = if on_ring { 0.85 } else { 0.95 };
        (base - congestion * rng.gen_range(0.05..0.35)).clamp(0.05, 0.99)
    };
    let groups = partition_with_triangles(&g, 3);
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| {
            let probs: Vec<(EdgeId, f64)> =
                grp.iter().map(|&e| (e, edge_prob(e, &g, rng))).collect();
            // Congested segments at the same intersection are correlated.
            JointProbTable::from_max_rule(&probs).expect("valid JPT")
        })
        .collect();
    ProbabilisticGraph::new(g, tables, true).expect("valid district model")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut db = ProbGraphDatabase::new();
    let districts = [
        ("riverside (light traffic)", 6, 0.1),
        ("old-town (moderate)", 5, 0.4),
        ("industrial (heavy)", 6, 0.8),
        ("hillside (light)", 4, 0.2),
        ("harbour (heavy)", 5, 0.9),
    ];
    for (name, ring, congestion) in districts {
        db.insert(district(name, ring, congestion, &mut rng));
    }
    db.build_index();
    println!("indexed {} districts", db.len());

    // Delivery-loop pattern: a roundabout-to-roundabout ring segment with a
    // junction spur and a highway ramp reachable from it.
    let pattern = GraphBuilder::new()
        .name("delivery-loop")
        .vertices(&[ROUNDABOUT, ROUNDABOUT, JUNCTION, RAMP])
        .edge(0, 1, 0) // ring segment
        .edge(0, 2, 0) // spur to a junction
        .edge(1, 3, 0) // ramp access
        .build();

    for (epsilon, delta) in [(0.6, 0usize), (0.6, 1), (0.3, 1)] {
        let result = db
            .query_detailed(
                &pattern,
                &QueryParams {
                    epsilon,
                    delta,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .expect("query succeeds");
        let names: Vec<&str> = result
            .answers
            .iter()
            .map(|&i| db.graph(i).expect("valid index").name())
            .collect();
        println!(
            "pattern feasible with Pr ≥ {epsilon} tolerating {delta} closed segment(s): {names:?}"
        );
    }

    // Reliability ranking: exact SSP of the pattern per district (small models,
    // exact evaluation is cheap).
    println!("\nper-district pattern reliability (δ = 1):");
    let mut ranked: Vec<(String, f64)> = db
        .graphs()
        .iter()
        .map(|pg| {
            let ssp = pgs::prob::exact::exact_ssp(pg, &pattern, 1, 22).unwrap_or(f64::NAN);
            (pg.name().to_string(), ssp)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (name, ssp) in ranked {
        println!("  {name:<28} {ssp:.3}");
    }
}
