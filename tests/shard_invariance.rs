//! Property-based shard invariance: for random probabilistic databases and
//! queries, a sharded engine must be *observationally identical* to the
//! 1-shard engine — same answers, same per-phase statistics, and the same
//! behaviour under incremental `append_graph` / `remove_graph` churn — at
//! every `(shards, threads)` combination.

use pgs::prelude::*;
use pgs_prob::neighbor::partition_with_triangles;
use pgs_query::pipeline::{PhaseStats, QueryEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random connected labelled graph (spanning tree + extra edges).
fn arb_graph(max_vertices: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (3..=max_vertices)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..labels, n),
                proptest::collection::vec((0..n, 0..n), 0..n),
                proptest::collection::vec(0..u64::MAX, n - 1),
            )
        })
        .prop_map(|(vlabels, extra, parents)| {
            let mut g = Graph::new();
            for &l in &vlabels {
                g.add_vertex(Label(l));
            }
            for i in 1..vlabels.len() {
                let p = (parents[i - 1] % i as u64) as u32;
                let _ = g.add_edge(VertexId(i as u32), VertexId(p), Label(0));
            }
            for (u, v) in extra {
                if u != v {
                    let _ = g.add_edge(VertexId(u as u32), VertexId(v as u32), Label(0));
                }
            }
            g
        })
}

/// Strategy: a probabilistic graph with max-rule JPTs over a random skeleton.
fn arb_probabilistic_graph() -> impl Strategy<Value = ProbabilisticGraph> {
    (
        arb_graph(7, 3),
        proptest::collection::vec(0.05f64..0.95, 24),
    )
        .prop_map(|(skeleton, probs)| {
            let groups = partition_with_triangles(&skeleton, 3);
            let tables: Vec<JointProbTable> = groups
                .iter()
                .map(|grp| {
                    let ep: Vec<(EdgeId, f64)> = grp
                        .iter()
                        .enumerate()
                        .map(|(i, &e)| (e, probs[(e.index() + i) % probs.len()]))
                        .collect();
                    JointProbTable::from_max_rule(&ep).unwrap()
                })
                .collect();
            ProbabilisticGraph::new(skeleton, tables, true).unwrap()
        })
}

fn engine_config(shards: usize, threads: usize) -> EngineConfig {
    EngineConfig {
        shards,
        threads,
        seed: 0x5EED,
        ..EngineConfig::default()
    }
}

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 2] = [1, 0];

/// Strips the wall-clock fields so two `PhaseStats` can be compared on work
/// counters alone (timings legitimately differ run to run).
fn counters_only(mut stats: PhaseStats) -> PhaseStats {
    stats.structural_seconds = 0.0;
    stats.probabilistic_seconds = 0.0;
    stats.verification_seconds = 0.0;
    stats
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 50,
        ..ProptestConfig::default()
    })]

    /// Answers *and* every per-phase counter are identical across every
    /// `(shards, threads)` combination, for both the indexed pipeline and the
    /// exact scan baseline.
    #[test]
    fn sharded_engines_are_observationally_identical(
        graphs in proptest::collection::vec(arb_probabilistic_graph(), 4..9),
        qsize in 2usize..4,
        delta in 0usize..2,
        qseed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(qseed);
        let donor = graphs[qseed as usize % graphs.len()].skeleton();
        let q = pgs_graph::generate::random_connected_subgraph(
            donor,
            qsize.min(donor.edge_count()),
            &mut rng,
        );
        prop_assume!(q.is_some());
        let q = q.unwrap();
        let params = QueryParams {
            epsilon: 0.3,
            delta,
            variant: PruningVariant::OptSspBound,
        };

        let reference = QueryEngine::build(graphs.clone(), engine_config(1, 1));
        let want = reference.query(&q, &params).unwrap();
        let want_scan = reference.exact_scan(&q, &params).unwrap();
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let engine = QueryEngine::build(graphs.clone(), engine_config(shards, threads));
                let got = engine.query(&q, &params).unwrap();
                prop_assert_eq!(
                    &got.answers, &want.answers,
                    "answers diverged at shards = {}, threads = {}", shards, threads
                );
                prop_assert_eq!(
                    counters_only(got.stats), counters_only(want.stats),
                    "phase stats diverged at shards = {}, threads = {}", shards, threads
                );
                let scan = engine.exact_scan(&q, &params).unwrap();
                prop_assert_eq!(
                    &scan.answers, &want_scan.answers,
                    "exact scan diverged at shards = {}, threads = {}", shards, threads
                );
            }
        }
    }

    /// Incremental churn (append one graph, remove one graph) leaves a
    /// sharded engine identical to the 1-shard engine that saw the same
    /// mutation sequence.
    #[test]
    fn incremental_churn_is_shard_invariant(
        graphs in proptest::collection::vec(arb_probabilistic_graph(), 4..8),
        extra in arb_probabilistic_graph(),
        remove_at in 0usize..4,
        qsize in 2usize..4,
    ) {
        let remove_at = remove_at % graphs.len();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let donor = extra.skeleton();
        let q = pgs_graph::generate::random_connected_subgraph(
            donor,
            qsize.min(donor.edge_count()),
            &mut rng,
        );
        prop_assume!(q.is_some());
        let q = q.unwrap();
        let params = QueryParams {
            epsilon: 0.3,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };

        let mut reference = QueryEngine::build(graphs.clone(), engine_config(1, 1));
        reference.insert_graph(extra.clone());
        reference.remove_graph(remove_at).unwrap();
        let want = reference.query(&q, &params).unwrap();
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let mut engine =
                    QueryEngine::build(graphs.clone(), engine_config(shards, threads));
                engine.insert_graph(extra.clone());
                engine.remove_graph(remove_at).unwrap();
                let got = engine.query(&q, &params).unwrap();
                prop_assert_eq!(
                    &got.answers, &want.answers,
                    "post-churn answers diverged at shards = {}, threads = {}", shards, threads
                );
                prop_assert_eq!(
                    counters_only(got.stats), counters_only(want.stats),
                    "post-churn stats diverged at shards = {}, threads = {}", shards, threads
                );
                // The sharded snapshot of the mutated index round-trips and the
                // reloaded engine still agrees.
                let bytes = engine.pmi().to_bytes();
                let reloaded = pgs_index::pmi::Pmi::from_bytes(&bytes).unwrap();
                prop_assert_eq!(reloaded.graph_count(), engine.pmi().graph_count());
            }
        }
    }
}
