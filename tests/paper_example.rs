//! Integration test: the paper's running example (Figure 1 / Example 1)
//! exercised end-to-end across all crates.

use pgs::prelude::*;
use pgs::prob::exact::{exact_ssp, exact_ssp_bruteforce};
use pgs_graph::model::EdgeId;
use pgs_graph::relax::relax_query;
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sip_bounds::BoundsConfig;
use pgs_query::prune::{BoundInstance, CrossTermRule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Graph 002 of Figure 1 with max-rule correlation tables (the paper's exact
/// JPT values rely on overlapping groups; see DESIGN.md §3 for the partition
/// substitution).
fn graph_002() -> ProbabilisticGraph {
    let skeleton = GraphBuilder::new()
        .name("002")
        .vertices(&[0, 0, 1, 1, 2])
        .edge(0, 1, 9)
        .edge(0, 2, 9)
        .edge(1, 2, 9)
        .edge(2, 3, 9)
        .edge(2, 4, 9)
        .build();
    let triangle =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
            .unwrap();
    let pendant = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
    ProbabilisticGraph::new(skeleton, vec![triangle, pendant], true).unwrap()
}

fn graph_001() -> ProbabilisticGraph {
    let skeleton = GraphBuilder::new()
        .name("001")
        .vertices(&[0, 1, 3])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build();
    let jpt =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.65), (EdgeId(1), 0.55), (EdgeId(2), 0.7)])
            .unwrap();
    ProbabilisticGraph::new(skeleton, vec![jpt], true).unwrap()
}

fn query_q() -> Graph {
    GraphBuilder::new()
        .name("q")
        .vertices(&[0, 1, 2])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build()
}

#[test]
fn lemma_1_holds_on_the_running_example() {
    // Definition 9 computed by brute-force world enumeration must equal the
    // Lemma 1 / relaxed-query formulation for every distance threshold.
    for pg in [graph_001(), graph_002()] {
        for delta in 0..=3 {
            let brute = exact_ssp_bruteforce(&pg, &query_q(), delta, 22).unwrap();
            let lemma = exact_ssp(&pg, &query_q(), delta, 22).unwrap();
            assert!(
                (brute - lemma).abs() < 1e-9,
                "{}: delta {delta}: {brute} vs {lemma}",
                pg.name()
            );
        }
    }
}

#[test]
fn figure_5_relaxed_query_set() {
    let u = relax_query(&query_q(), 1);
    assert_eq!(
        u.len(),
        3,
        "relaxing the labelled triangle by 1 edge gives rq1, rq2, rq3"
    );
    for rq in &u {
        assert_eq!(rq.edge_count(), 2);
    }
}

#[test]
fn pmi_bounds_bracket_exact_ssp_on_the_example_database() {
    let db = vec![graph_001(), graph_002()];
    let pmi = Pmi::build(
        &db,
        &PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.4,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 16,
            },
            bounds: BoundsConfig::default(),
            threads: 1,
            seed: 1,
        },
    );
    let q = query_q();
    let delta = 1;
    let relaxed = relax_query(&q, delta);
    let mut rng = StdRng::seed_from_u64(9);
    for (gi, pg) in db.iter().enumerate() {
        let instance = BoundInstance::build(&pmi, gi, &relaxed);
        let usim = instance.usim_optimal();
        let lsim = instance.lsim_optimal(CrossTermRule::SafeMin, &mut rng);
        let exact = exact_ssp(pg, &q, delta, 22).unwrap();
        assert!(
            lsim <= exact + 1e-9,
            "graph {gi}: Lsim {lsim} > exact {exact}"
        );
        assert!(
            usim + 1e-9 >= exact,
            "graph {gi}: Usim {usim} < exact {exact}"
        );
    }
}

#[test]
fn example_1_query_semantics_through_the_facade() {
    let mut db = ProbGraphDatabase::new();
    db.insert(graph_001());
    db.insert(graph_002());
    db.build_index();
    let q = query_q();

    // Exact SSP values drive the expected answers.
    let ssp_001 = exact_ssp(db.graph(0).unwrap(), &q, 1, 22).unwrap();
    let ssp_002 = exact_ssp(db.graph(1).unwrap(), &q, 1, 22).unwrap();

    let threshold = (ssp_001 + ssp_002) / 2.0; // separates the two graphs
    let (lo, hi) = if ssp_001 < ssp_002 { (0, 1) } else { (1, 0) };
    let matches = db.query(&q, threshold, 1).unwrap();
    let indices: Vec<usize> = matches.iter().map(|m| m.graph_index).collect();
    assert!(indices.contains(&hi));
    assert!(!indices.contains(&lo));

    // Thresholds derived from the exact SSPs give exactly the predicted answer
    // counts (graph 001 has SSP 0 at δ = 1: every 1-edge relaxation still needs
    // the missing c-labelled vertex).
    let low_threshold = 1e-3;
    let expected_low = [ssp_001, ssp_002]
        .iter()
        .filter(|&&p| p >= low_threshold)
        .count();
    let all = db.query(&q, low_threshold, 1).unwrap();
    assert_eq!(all.len(), expected_low);
    let none = db
        .query(&q, (ssp_001.max(ssp_002) * 1.2).min(1.0), 1)
        .unwrap();
    assert!(none.len() <= 1); // at most the higher graph if its SSP ≥ capped threshold
}

#[test]
fn theorem_1_structural_pruning_is_sound() {
    // If the query is not subgraph-similar to the skeleton, the SSP is zero and
    // the structural phase must discard the graph.
    let skeletons: Vec<Graph> = vec![
        graph_001().skeleton().clone(),
        graph_002().skeleton().clone(),
    ];
    let foreign = GraphBuilder::new()
        .vertices(&[7, 7, 7])
        .edge(0, 1, 1)
        .edge(1, 2, 1)
        .build();
    let candidates = pgs_query::structural::structural_candidates(&skeletons, &foreign, 0);
    assert!(candidates.is_empty());
    for pg in [graph_001(), graph_002()] {
        assert_eq!(exact_ssp(&pg, &foreign, 0, 22).unwrap(), 0.0);
    }
}
