//! Property-based tests (proptest) of the core invariants: graph model,
//! canonical codes, relaxation, subgraph distance, probabilistic model and the
//! PMI bounds.

use pgs::prelude::*;
use pgs::prob::exact::{exact_sip, exact_ssp, exact_ssp_bruteforce};
use pgs_graph::dfs_code::{are_isomorphic, canonical_code};
use pgs_graph::embeddings::EdgeSet;
use pgs_graph::mcs::{subgraph_distance, subgraph_similar};
use pgs_graph::relax::relax_query;
use pgs_graph::vf2::{contains_subgraph, enumerate_embeddings, MatchOptions};
use pgs_index::sip_bounds::{sip_bounds, BoundsConfig};
use pgs_prob::neighbor::{is_neighbor_edge_set, partition_with_triangles};
use pgs_prob::union_sampler::{StoppingRule, UnionSampler};
use pgs_query::verify::{
    collect_embeddings_of_relaxations, verify_ssp_sampled_baseline, verify_ssp_sampled_relaxed,
    VerifyOptions,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random connected labelled graph described by (vertex labels,
/// extra edges).  The spanning tree `i -> parent(i)` keeps it connected.
fn arb_graph(max_vertices: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..labels, n),
                proptest::collection::vec((0..n, 0..n), 0..n * 2),
                proptest::collection::vec(0..u64::MAX, n - 1),
            )
        })
        .prop_map(|(vlabels, extra, parents)| {
            let mut g = Graph::new();
            for &l in &vlabels {
                g.add_vertex(Label(l));
            }
            for i in 1..vlabels.len() {
                let p = (parents[i - 1] % i as u64) as u32;
                let _ = g.add_edge(VertexId(i as u32), VertexId(p), Label(0));
            }
            for (u, v) in extra {
                if u != v {
                    let _ = g.add_edge(VertexId(u as u32), VertexId(v as u32), Label(0));
                }
            }
            g
        })
}

/// Strategy: a probabilistic graph over a random skeleton with max-rule JPTs.
fn arb_probabilistic_graph() -> impl Strategy<Value = ProbabilisticGraph> {
    (
        arb_graph(7, 3),
        proptest::collection::vec(0.05f64..0.95, 32),
    )
        .prop_map(|(skeleton, probs)| {
            let groups = partition_with_triangles(&skeleton, 3);
            let tables: Vec<JointProbTable> = groups
                .iter()
                .map(|grp| {
                    let ep: Vec<(EdgeId, f64)> = grp
                        .iter()
                        .enumerate()
                        .map(|(i, &e)| (e, probs[(e.index() + i) % probs.len()]))
                        .collect();
                    JointProbTable::from_max_rule(&ep).unwrap()
                })
                .collect();
            ProbabilisticGraph::new(skeleton, tables, true).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    // ---------------------------------------------------------------- graphs

    #[test]
    fn canonical_code_is_isomorphism_invariant(g in arb_graph(6, 3), seed in 0u64..1000) {
        // Relabel the vertices with a random permutation; the canonical code
        // must not change and the graphs must be reported isomorphic.
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..g.vertex_count() as u32).collect();
        perm.shuffle(&mut rng);
        let mut h = Graph::new();
        let mut slots = vec![Label(0); g.vertex_count()];
        for v in g.vertices() {
            slots[perm[v.index()] as usize] = g.vertex_label(v);
        }
        for l in &slots {
            h.add_vertex(*l);
        }
        for (_, e) in g.edge_entries() {
            h.add_edge(
                VertexId(perm[e.u.index()]),
                VertexId(perm[e.v.index()]),
                e.label,
            )
            .unwrap();
        }
        prop_assert!(are_isomorphic(&g, &h));
        prop_assert_eq!(canonical_code(&g), canonical_code(&h));
    }

    #[test]
    fn every_connected_subpattern_is_found_by_vf2(g in arb_graph(7, 3)) {
        // Any subgraph built from a subset of g's edges must embed back into g.
        let take: Vec<EdgeId> = g.edges().step_by(2).collect();
        if !take.is_empty() {
            let sub = pgs_graph::relax::drop_isolated(&g.edge_subgraph(&take));
            prop_assert!(contains_subgraph(&sub, &g));
        }
    }

    #[test]
    fn subgraph_distance_axioms(q in arb_graph(5, 2), g in arb_graph(6, 2)) {
        let d = subgraph_distance(&q, &g);
        prop_assert!(d <= q.edge_count());
        prop_assert_eq!(subgraph_distance(&q, &q), 0);
        // The threshold predicate agrees with the distance.
        for delta in 0..=q.edge_count() {
            prop_assert_eq!(subgraph_similar(&q, &g, delta), d <= delta);
        }
        // If q embeds in g the distance is zero.
        if contains_subgraph(&q, &g) {
            prop_assert_eq!(d, 0);
        }
    }

    #[test]
    fn relaxation_produces_subgraphs_of_the_query(q in arb_graph(6, 3), delta in 0usize..3) {
        let relaxed = relax_query(&q, delta.min(q.edge_count()));
        for rq in &relaxed {
            prop_assert_eq!(rq.edge_count(), q.edge_count() - delta.min(q.edge_count()));
            prop_assert!(contains_subgraph(rq, &q), "every relaxation embeds in the query");
        }
        // Pairwise non-isomorphic.
        for i in 0..relaxed.len() {
            for j in (i + 1)..relaxed.len() {
                prop_assert!(!are_isomorphic(&relaxed[i], &relaxed[j]));
            }
        }
    }

    // ------------------------------------------------------- probability model

    #[test]
    fn neighbor_partition_is_a_valid_partition(g in arb_graph(8, 3), cap in 1usize..4) {
        let groups = partition_with_triangles(&g, cap);
        let mut seen = vec![false; g.edge_count()];
        for grp in &groups {
            prop_assert!(grp.len() <= cap.max(3));
            prop_assert!(is_neighbor_edge_set(&g, grp));
            for e in grp {
                prop_assert!(!seen[e.index()]);
                seen[e.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn world_probabilities_form_a_distribution(pg in arb_probabilistic_graph()) {
        prop_assume!(pg.edge_count() <= 12);
        let worlds = pgs::prob::world::enumerate_worlds(&pg, 12).unwrap();
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total probability {total}");
        for w in &worlds {
            prop_assert!(w.probability >= -1e-12);
        }
    }

    #[test]
    fn joint_probability_never_exceeds_marginals(pg in arb_probabilistic_graph()) {
        let edges: Vec<EdgeId> = pg.skeleton().edges().collect();
        if edges.len() >= 2 {
            let pair = [edges[0], edges[1]];
            let joint = pg.prob_all_present(&pair);
            for e in pair {
                prop_assert!(joint <= pg.edge_presence_prob(e) + 1e-9);
            }
        }
    }

    // -------------------------------------------------------------- SSP / SIP

    #[test]
    fn lemma_1_equivalence_on_random_instances(pg in arb_probabilistic_graph(), qsize in 1usize..4) {
        prop_assume!(pg.edge_count() <= 10);
        let mut rng = StdRng::seed_from_u64(7);
        let q = pgs_graph::generate::random_connected_subgraph(pg.skeleton(), qsize.min(pg.edge_count()), &mut rng);
        prop_assume!(q.is_some());
        let q = q.unwrap();
        for delta in 0..=1usize {
            let brute = exact_ssp_bruteforce(&pg, &q, delta, 14).unwrap();
            let lemma = exact_ssp(&pg, &q, delta, 14).unwrap();
            prop_assert!((brute - lemma).abs() < 1e-9, "delta {delta}: {brute} vs {lemma}");
        }
    }

    #[test]
    fn union_sampler_agrees_with_the_fullworld_baseline(pg in arb_probabilistic_graph(), qsize in 2usize..4, delta in 0usize..2) {
        // The projected bitset sampler (UnionSampler) and the pre-projection
        // full-world loop estimate the same Karp–Luby union probability; both
        // must sit within Monte-Carlo tolerance of the exact union value (and
        // hence of each other).
        prop_assume!(pg.edge_count() >= 3 && pg.edge_count() <= 12);
        let mut rng = StdRng::seed_from_u64(29);
        let q = pgs_graph::generate::random_connected_subgraph(pg.skeleton(), qsize, &mut rng);
        prop_assume!(q.is_some());
        let q = q.unwrap();
        let delta = delta.min(q.edge_count().saturating_sub(1));
        let relaxed = pgs_graph::relax::relax_query_clamped(&q, delta);
        let options = VerifyOptions {
            exact_cutoff: 0, // force both samplers off the exact shortcut
            mc: pgs::prob::montecarlo::MonteCarloConfig {
                tau: 0.05,
                xi: 0.01,
                max_samples: 20_000,
            },
            ..VerifyOptions::default()
        };
        let embeddings = collect_embeddings_of_relaxations(&pg, &relaxed, options.max_embeddings);
        let exact = pgs::prob::exact::exact_union_probability(&pg, &embeddings, 22).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let baseline = verify_ssp_sampled_baseline(&pg, &q, delta, &relaxed, &options, &mut rng);
        let mut rng = StdRng::seed_from_u64(37);
        let fast = verify_ssp_sampled_relaxed(&pg, &q, delta, &relaxed, &options, &mut rng);
        prop_assert!((fast - exact).abs() < 0.04, "union sampler {fast} vs exact {exact}");
        prop_assert!((baseline - exact).abs() < 0.04, "baseline {baseline} vs exact {exact}");
        prop_assert!((fast - baseline).abs() < 0.08, "union sampler {fast} vs baseline {baseline}");
    }

    #[test]
    fn embedding_collection_dedup_matches_linear_scan(pg in arb_probabilistic_graph(), qsize in 1usize..4, delta in 0usize..2) {
        // The hash-set dedup of collect_embeddings_of_relaxations must
        // produce exactly the list the old Vec::contains scan produced, for
        // every cap.
        prop_assume!(pg.edge_count() >= 2 && pg.edge_count() <= 12);
        let mut rng = StdRng::seed_from_u64(41);
        let q = pgs_graph::generate::random_connected_subgraph(pg.skeleton(), qsize.min(pg.edge_count()), &mut rng);
        prop_assume!(q.is_some());
        let q = q.unwrap();
        let relaxed = pgs_graph::relax::relax_query_clamped(&q, delta.min(q.edge_count().saturating_sub(1)));
        for cap in [1usize, 3, 64] {
            let fast = collect_embeddings_of_relaxations(&pg, &relaxed, cap);
            // Reference: the pre-PR quadratic dedup.
            let mut reference: Vec<EdgeSet> = Vec::new();
            for rq in &relaxed {
                if rq.edge_count() == 0 {
                    continue;
                }
                let outcome = enumerate_embeddings(
                    rq,
                    pg.skeleton(),
                    MatchOptions::capped(cap.saturating_sub(reference.len()).max(1)),
                );
                for emb in outcome.embeddings {
                    if !reference.contains(&emb.edges) {
                        reference.push(emb.edges);
                    }
                }
                if reference.len() >= cap {
                    break;
                }
            }
            prop_assert_eq!(&fast, &reference, "cap = {}", cap);
        }
    }

    #[test]
    fn sip_bounds_always_bracket_the_exact_sip(pg in arb_probabilistic_graph()) {
        prop_assume!(pg.edge_count() >= 2 && pg.edge_count() <= 12);
        let mut rng = StdRng::seed_from_u64(13);
        let feature = pgs_graph::generate::random_connected_subgraph(pg.skeleton(), 2, &mut rng);
        prop_assume!(feature.is_some());
        let feature = feature.unwrap();
        let bounds = sip_bounds(&pg, &feature, &BoundsConfig::default(), &mut rng);
        let outcome = enumerate_embeddings(&feature, pg.skeleton(), MatchOptions::default());
        let sets: Vec<EdgeSet> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
        let exact = exact_sip(&pg, &sets).unwrap();
        prop_assert!(bounds.lower <= exact + 1e-9, "lower {} > exact {exact}", bounds.lower);
        prop_assert!(bounds.upper + 1e-9 >= exact, "upper {} < exact {exact}", bounds.upper);
        prop_assert!(bounds.is_valid());
    }

    #[test]
    fn adaptive_estimate_is_byte_identical_across_threads(
        pg in arb_probabilistic_graph(),
        qsize in 2usize..4,
        seed in 0u64..1000,
        threshold in 0.0f64..1.0,
    ) {
        // The early-stopping estimator checks its interval only at fixed
        // chunk boundaries, so its estimate, draw count and decision must be
        // byte-identical at 1, 2 and auto threads — and across repeats.
        prop_assume!(pg.edge_count() >= 3 && pg.edge_count() <= 12);
        let mut rng = StdRng::seed_from_u64(41);
        let q = pgs_graph::generate::random_connected_subgraph(pg.skeleton(), qsize, &mut rng);
        prop_assume!(q.is_some());
        let q = q.unwrap();
        let relaxed = pgs_graph::relax::relax_query_clamped(&q, 1);
        let embeddings = collect_embeddings_of_relaxations(&pg, &relaxed, 64);
        prop_assume!(!embeddings.is_empty());
        let sampler = UnionSampler::new(&pg, &embeddings);
        prop_assume!(sampler.is_some());
        let sampler = sampler.unwrap();
        let rule = StoppingRule { threshold, xi: 0.05, accept_early: true };
        let reference = sampler.estimate_adaptive(4096, seed, 1, &rule);
        prop_assert!(reference.samples_drawn <= 4096);
        for threads in [2usize, 0] {
            let other = sampler.estimate_adaptive(4096, seed, threads, &rule);
            prop_assert_eq!(
                other.estimate.to_bits(), reference.estimate.to_bits(),
                "estimate diverged at {} threads", threads
            );
            prop_assert_eq!(other.samples_drawn, reference.samples_drawn);
            prop_assert_eq!(other.decision, reference.decision);
        }
        let again = sampler.estimate_adaptive(4096, seed, 1, &rule);
        prop_assert_eq!(again.estimate.to_bits(), reference.estimate.to_bits());
        prop_assert_eq!(again.samples_drawn, reference.samples_drawn);
        prop_assert_eq!(again.decision, reference.decision);
    }
}
