//! The persistent worker pool's two load-bearing guarantees, pinned at the
//! integration level:
//!
//! 1. **Determinism** — pool-backed `par_map_chunked` is byte-identical to
//!    the sequential path for every thread count (the DESIGN.md §8/§12
//!    contract, here as a property over random inputs and random closures
//!    parameterised by `derive_seed`), and the full query pipeline inherits
//!    it.
//! 2. **Reuse** — workers are spawned once and parked, never re-spawned per
//!    call: repeated `query_batch` runs must not grow the pool (the leak the
//!    spawn-per-call executor effectively had, paying thread creation on
//!    every dispatch).

use pgs::datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
use pgs::datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs::prelude::*;
use pgs::query::pipeline::QueryEngine;
use pgs_graph::parallel::{
    derive_seed, par_map_chunked, par_map_chunked_costed, CostHint, MAX_THREADS,
};
use pgs_graph::pool::{global_worker_count, WorkerPool};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::PmiBuildParams;
use pgs_index::sip_bounds::BoundsConfig;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        ..ProptestConfig::default()
    })]

    /// Pool-backed chunked maps equal the sequential map for every thread
    /// count, item count and (seed-parameterised) closure.
    #[test]
    fn par_map_is_byte_identical_to_sequential_for_every_thread_count(
        items in proptest::collection::vec(0u64..u64::MAX, 0..200),
        salt in 0u64..u64::MAX,
    ) {
        let map = |i: usize, x: &u64| derive_seed(&[salt, i as u64, *x]);
        let sequential: Vec<u64> = items.iter().enumerate().map(|(i, x)| map(i, x)).collect();
        for threads in [1usize, 2, 3, 4, 7, 8, 16, 0] {
            // MODERATE exercises the cost-model gate (small inputs stay
            // inline), HEAVY forces real pool dispatch from 2 items up;
            // both must agree with the sequential reference bit for bit.
            prop_assert_eq!(&par_map_chunked(&items, threads, map), &sequential,
                "moderate, threads = {}", threads);
            prop_assert_eq!(
                &par_map_chunked_costed(&items, threads, CostHint::HEAVY, map),
                &sequential,
                "heavy, threads = {}", threads);
        }
    }
}

fn pool_engine(threads: usize) -> (QueryEngine, Vec<Graph>) {
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 24,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 2,
        seed: 2026,
        ..PpiDatasetConfig::default()
    });
    let queries: Vec<Graph> = generate_query_workload(
        &dataset,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 6,
            seed: 31,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    let config = EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.2,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 7,
        },
        threads,
        ..EngineConfig::default()
    };
    (QueryEngine::build(dataset.graphs, config), queries)
}

/// Repeated dispatches on a private pool never grow it past the requested
/// worker count: threads are parked and reused, not re-created per call.
#[test]
fn private_pool_does_not_leak_workers_across_dispatches() {
    let pool = WorkerPool::new();
    for round in 0..100 {
        let sum = AtomicUsize::new(0);
        pool.run(16, 4, &|ci| {
            sum.fetch_add(ci, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 120, "round {round}");
        assert_eq!(
            pool.spawned_workers(),
            3,
            "round {round}: the pool grew — workers are not being reused"
        );
    }
}

/// Repeated `query_batch` calls reuse the global pool.  The worker count may
/// only move when a *larger* thread count than ever before is requested
/// (other tests share the process-wide pool, so the assertion is taken
/// relative to a snapshot between the batches of this test).
#[test]
fn repeated_query_batches_do_not_leak_pool_workers() {
    let (engine, queries) = pool_engine(4);
    let params = QueryParams {
        epsilon: 0.3,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    // Warm the pool up to this workload's worker demand.
    let first = engine.query_batch(&queries, &params).unwrap();
    let after_warmup = global_worker_count();
    assert!(
        after_warmup <= MAX_THREADS,
        "the global pool must respect the worker ceiling"
    );
    for round in 0..20 {
        let again = engine.query_batch(&queries, &params).unwrap();
        for (a, b) in first.results.iter().zip(&again.results) {
            assert_eq!(a.answers, b.answers, "round {round} changed answers");
        }
        assert_eq!(
            global_worker_count(),
            after_warmup,
            "round {round}: repeated identical batches grew the global pool"
        );
    }
}

/// The pipeline's end-to-end answers are identical whether the pool runs 1,
/// 4 or auto workers — the engine-level face of the property test above.
#[test]
fn pool_backed_queries_match_sequential_at_every_thread_count() {
    let (sequential, queries) = pool_engine(1);
    let params = QueryParams {
        epsilon: 0.3,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    for threads in [2usize, 4, 0] {
        let (pooled, _) = pool_engine(threads);
        for q in &queries {
            assert_eq!(
                sequential.query(q, &params).unwrap().answers,
                pooled.query(q, &params).unwrap().answers,
                "threads = {threads}"
            );
        }
    }
}
