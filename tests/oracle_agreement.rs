//! Oracle-agreement tests: the sampled verifier must agree with the exact
//! verifier within Monte-Carlo tolerance, and the PMI's stored SIP bounds must
//! bracket the exact SIP, on small graphs where the exact oracle is cheap.

use pgs::prelude::*;
use pgs_graph::vf2::{enumerate_embeddings, MatchOptions};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sip_bounds::BoundsConfig;
use pgs_prob::exact::exact_sip;
use pgs_prob::montecarlo::MonteCarloConfig;
use pgs_prob::neighbor::partition_with_triangles;
use pgs_query::verify::{verify_ssp_exact, verify_ssp_sampled, VerifyOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a labelled graph from an edge list (`labels[i]` is vertex `i`'s label).
fn graph(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new().vertices(labels);
    for &(u, v) in edges {
        b = b.edge(u, v, 0);
    }
    b.build()
}

/// An independent probabilistic graph over `edges` with cyclic probabilities.
fn independent_pg(labels: &[u32], edges: &[(u32, u32)], probs: &[f64]) -> ProbabilisticGraph {
    let skeleton = graph(labels, edges);
    let per_edge: Vec<f64> = (0..skeleton.edge_count())
        .map(|i| probs[i % probs.len()])
        .collect();
    ProbabilisticGraph::independent(skeleton, &per_edge).unwrap()
}

/// A correlated (max-rule JPT) probabilistic graph over the same skeleton.
fn correlated_pg(labels: &[u32], edges: &[(u32, u32)], probs: &[f64]) -> ProbabilisticGraph {
    let skeleton = graph(labels, edges);
    let groups = partition_with_triangles(&skeleton, 3);
    let tables: Vec<JointProbTable> = groups
        .iter()
        .map(|grp| {
            let ep: Vec<(EdgeId, f64)> = grp
                .iter()
                .map(|&e| (e, probs[e.index() % probs.len()]))
                .collect();
            JointProbTable::from_max_rule(&ep).unwrap()
        })
        .collect();
    ProbabilisticGraph::new(skeleton, tables, true).unwrap()
}

/// Small 5–8 edge fixtures spanning paths, cycles and shared-triangle shapes,
/// in both the independent and the correlated edge model.
fn fixtures() -> Vec<ProbabilisticGraph> {
    let path5 = (
        &[0u32, 1, 0, 1, 0, 1][..],
        &[(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)][..],
    );
    let cycle6 = (
        &[0u32, 1, 2, 0, 1, 2][..],
        &[(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)][..],
    );
    let tri_tail = (
        &[0u32, 0, 1, 1, 2][..],
        &[(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4)][..],
    );
    let bowtie = (
        &[0u32, 0, 0, 0, 0][..],
        &[(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)][..],
    );
    let dense8 = (
        &[0u32, 1, 0, 1, 0][..],
        &[
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 2),
            (1, 3),
            (2, 4),
        ][..],
    );
    let probs_a = [0.9, 0.4, 0.7, 0.55, 0.8];
    let probs_b = [0.35, 0.85, 0.6, 0.45];
    let mut out = Vec::new();
    for (labels, edges) in [path5, cycle6, tri_tail, bowtie, dense8] {
        out.push(independent_pg(labels, edges, &probs_a));
        out.push(correlated_pg(labels, edges, &probs_b));
    }
    out
}

/// Queries worth asking against the fixtures: short paths with the fixtures'
/// label patterns, plus a labelled triangle.
fn queries() -> Vec<Graph> {
    vec![
        graph(&[0, 1], &[(0, 1)]),
        graph(&[0, 1, 0], &[(0, 1), (1, 2)]),
        graph(&[1, 0, 1], &[(0, 1), (1, 2)]),
        graph(&[0, 1, 2], &[(0, 1), (1, 2)]),
        graph(&[0, 0, 0], &[(0, 1), (1, 2), (0, 2)]),
        graph(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3)]),
    ]
}

#[test]
fn sampled_verifier_agrees_with_exact_verifier() {
    // Force the Algorithm 5 sampling path (exact_cutoff = 0) and give it a
    // tight budget: with τ = 0.05 the Karp–Luby estimator's relative error is
    // within 5% with overwhelming probability, and the vendored RNG is
    // deterministic, so the tolerance below cannot flake.
    let options = VerifyOptions {
        mc: MonteCarloConfig {
            tau: 0.05,
            xi: 1e-4,
            max_samples: 60_000,
        },
        max_embeddings: 256,
        exact_cutoff: 0,
        // This test exercises the fixed-budget estimator; the adaptive
        // stopping rule has its own agreement tests.
        adaptive: false,
    };
    let mut rng = StdRng::seed_from_u64(0xACC0);
    let mut compared = 0usize;
    for (gi, pg) in fixtures().iter().enumerate() {
        for (qi, q) in queries().iter().enumerate() {
            for delta in 0..=1usize {
                let exact = verify_ssp_exact(pg, q, delta, 24).unwrap();
                let sampled = verify_ssp_sampled(pg, q, delta, &options, &mut rng);
                assert!(
                    (exact - sampled).abs() <= 0.05 * exact.max(0.05),
                    "fixture {gi}, query {qi}, δ = {delta}: exact {exact} vs sampled {sampled}"
                );
                if exact > 0.0 {
                    compared += 1;
                }
            }
        }
    }
    // Guard against the comparison degenerating to all-zero SSPs.
    assert!(
        compared >= 20,
        "only {compared} non-trivial comparisons ran"
    );
}

#[test]
fn pmi_bounds_bracket_the_exact_sip() {
    // Index the independent/correlated fixtures and check that every stored
    // (graph, feature) interval brackets the exact SIP of that feature.
    let db = fixtures();
    let pmi = Pmi::build(
        &db,
        &PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.1,
                gamma: 0.0,
                max_l: 3,
                max_features: 32,
                max_embeddings: 64,
            },
            bounds: BoundsConfig::default(),
            threads: 1,
            seed: 7,
        },
    );
    assert!(!pmi.features().is_empty(), "feature mining found nothing");
    let mut checked = 0usize;
    for (gi, pg) in db.iter().enumerate() {
        for (fi, bounds) in pmi.graph_entries(gi) {
            let feature = &pmi.features()[fi];
            let outcome =
                enumerate_embeddings(&feature.graph, pg.skeleton(), MatchOptions::default());
            let sets: Vec<_> = outcome.embeddings.iter().map(|e| e.edges.clone()).collect();
            let exact = exact_sip(pg, &sets).unwrap();
            assert!(
                bounds.lower <= exact + 1e-9,
                "graph {gi}, feature {fi}: lower bound {} exceeds exact SIP {exact}",
                bounds.lower
            );
            assert!(
                bounds.upper + 1e-9 >= exact,
                "graph {gi}, feature {fi}: upper bound {} below exact SIP {exact}",
                bounds.upper
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "only {checked} (graph, feature) cells checked"
    );
}
