//! Integration tests over a synthetic dataset: the whole pipeline (datagen →
//! PMI → pruning → verification) compared against the exact scan, plus the
//! COR-vs-IND quality experiment in miniature.

use pgs::datagen::ppi::{generate_ppi_dataset, CorrelationModel, PpiDatasetConfig};
use pgs::datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs::prelude::*;
use pgs::prob::independent::to_independent_model;
use pgs::query::verify::VerifyOptions;
use pgs_graph::serialize::{read_database, write_database};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::PmiBuildParams;
use pgs_index::sip_bounds::BoundsConfig;

fn dataset() -> pgs::datagen::ppi::PpiDataset {
    generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 18,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.3,
        seed: 1234,
        ..PpiDatasetConfig::default()
    })
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.2,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 11,
        },
        verify: VerifyOptions {
            exact_cutoff: 18,
            ..VerifyOptions::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn pipeline_answers_match_exact_scan_across_parameters() {
    let ds = dataset();
    let mut db = ProbGraphDatabase::with_config(engine_config());
    db.extend(ds.graphs.iter().cloned());
    db.build_index();
    let queries = generate_query_workload(
        &ds,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 3,
            seed: 99,
        },
    );
    for wq in &queries {
        for (epsilon, delta) in [(0.3, 1usize), (0.6, 1), (0.5, 0)] {
            let params = QueryParams {
                epsilon,
                delta,
                variant: PruningVariant::OptSspBound,
            };
            let fast = db.query_detailed(&wq.graph, &params).unwrap();
            let exact = db.exact_scan(&wq.graph, &params).unwrap();
            assert_eq!(
                fast.answers, exact.answers,
                "mismatch at ε={epsilon}, δ={delta} for query from graph {}",
                wq.source_graph
            );
            // Consistency of the reported statistics.
            assert_eq!(
                fast.stats.structural_candidates,
                fast.stats.pruned_by_upper + fast.stats.accepted_by_lower + fast.stats.verified
            );
        }
    }
}

#[test]
fn answer_sets_are_monotone_in_epsilon_and_delta() {
    let ds = dataset();
    let mut db = ProbGraphDatabase::with_config(engine_config());
    db.extend(ds.graphs.iter().cloned());
    db.build_index();
    let q = generate_query_workload(
        &ds,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 1,
            seed: 5,
        },
    )
    .pop()
    .unwrap()
    .graph;

    let answers = |epsilon: f64, delta: usize| -> Vec<usize> {
        db.query(&q, epsilon, delta)
            .unwrap()
            .into_iter()
            .map(|m| m.graph_index)
            .collect()
    };
    let a_03 = answers(0.3, 1);
    let a_06 = answers(0.6, 1);
    for g in &a_06 {
        assert!(a_03.contains(g), "ε-monotonicity violated");
    }
    let d0 = answers(0.4, 0);
    let d2 = answers(0.4, 2);
    for g in &d0 {
        assert!(d2.contains(g), "δ-monotonicity violated");
    }
}

#[test]
fn correlated_model_beats_independent_model_on_organism_retrieval() {
    // Miniature Figure 14: queries extracted from an organism should retrieve
    // graphs of the same organism; the correlated model should not do worse
    // than the independent approximation on F1.
    let ds = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 18,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.2,
        correlation: CorrelationModel::StrongPositive,
        seed: 777,
        ..PpiDatasetConfig::default()
    });
    let mut cor_db = ProbGraphDatabase::with_config(engine_config());
    cor_db.extend(ds.graphs.iter().cloned());
    cor_db.build_index();
    let mut ind_db = ProbGraphDatabase::with_config(engine_config());
    ind_db.extend(ds.graphs.iter().map(to_independent_model));
    ind_db.build_index();

    let queries = generate_query_workload(
        &ds,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 6,
            seed: 21,
        },
    );
    let f1_of = |db: &ProbGraphDatabase| -> f64 {
        let mut f1_sum = 0.0;
        for wq in &queries {
            let truth: Vec<usize> = ds
                .organism_of
                .iter()
                .enumerate()
                .filter(|(_, &o)| o == wq.source_organism)
                .map(|(i, _)| i)
                .collect();
            // ε = 0.15, not the paper's 0.35: with the STRING-calibrated mean
            // edge probability of 0.383, a 4-edge query at δ = 1 needs ≥ 3
            // edges jointly present, so exact SSPs on this dataset land in
            // ≈ 0.05–0.28 (measured) and an ε of 0.35 retrieves nothing at
            // all.  The original threshold encoded a wrong expectation about
            // this miniature dataset, not a code bug — the property under
            // test (correlated F1 ≥ independent F1 > 0) is unchanged.
            let answers: Vec<usize> = db
                .query(&wq.graph, 0.15, 1)
                .unwrap()
                .into_iter()
                .map(|m| m.graph_index)
                .collect();
            let hits = answers.iter().filter(|a| truth.contains(a)).count() as f64;
            let precision = if answers.is_empty() {
                1.0
            } else {
                hits / answers.len() as f64
            };
            let recall = hits / truth.len() as f64;
            f1_sum += if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
        }
        f1_sum / queries.len() as f64
    };
    let cor_f1 = f1_of(&cor_db);
    let ind_f1 = f1_of(&ind_db);
    // The correlated model uses the true distribution; dropping the correlation
    // must not *improve* retrieval quality (allow a small tolerance for ties).
    assert!(
        cor_f1 + 0.05 >= ind_f1,
        "correlated F1 {cor_f1} unexpectedly below independent F1 {ind_f1}"
    );
    assert!(cor_f1 > 0.0, "correlated model should retrieve something");
}

#[test]
fn skeleton_serialization_round_trips_through_the_text_format() {
    let ds = dataset();
    let skeletons = ds.skeletons();
    let text = write_database(&skeletons);
    let back = read_database(&text).unwrap();
    assert_eq!(skeletons, back);
}

#[test]
fn pmi_statistics_reflect_the_database() {
    let ds = dataset();
    let mut db = ProbGraphDatabase::with_config(engine_config());
    db.extend(ds.graphs.iter().cloned());
    db.build_index();
    let pmi = db.engine().unwrap().pmi();
    let stats = pmi.stats();
    assert_eq!(stats.graph_count, ds.graphs.len());
    assert!(stats.feature_count > 0);
    assert!(stats.occupied_cells >= stats.feature_count); // frequent features occur somewhere
    assert!(stats.size_bytes > 0);
    // Every stored bound is a valid probability interval.
    for gi in 0..stats.graph_count {
        for (fi, bounds) in pmi.graph_entries(gi) {
            assert!(fi < stats.feature_count);
            assert!(
                bounds.is_valid(),
                "invalid bounds at ({gi}, {fi}): {bounds:?}"
            );
        }
    }
}
