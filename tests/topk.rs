//! End-to-end guarantees of the best-first top-k query path.
//!
//! * The ranked list must agree with the top-k of the exact SSP values
//!   (the ground truth the moving lower-bound threshold is allowed to
//!   approximate but never change).
//! * Ties at the k-th boundary are pinned by the graph content salt, so the
//!   selected answers must survive a database shuffle byte-for-byte.
//! * The ranked lists must be byte-identical across thread counts, shard
//!   counts and repeated runs, with the adaptive sampler on the noisy path.
//! * Invalid `k` surfaces as the typed facade error, not a panic.

use pgs::datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
use pgs::datagen::queries::{generate_query_workload, QueryWorkloadConfig};
use pgs::prelude::*;
use pgs::prob::montecarlo::MonteCarloConfig;
use pgs::query::pipeline::QueryEngine;
use pgs::query::verify::{verify_ssp_exact, VerifyOptions};
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::PmiBuildParams;
use pgs_index::sip_bounds::BoundsConfig;

fn triangle(name: &str, p: f64) -> ProbabilisticGraph {
    let g = GraphBuilder::new()
        .name(name)
        .vertices(&[0, 1, 2])
        .edge(0, 1, 0)
        .edge(1, 2, 0)
        .edge(0, 2, 0)
        .build();
    ProbabilisticGraph::independent(g, &[p, p, p]).unwrap()
}

fn triangle_query() -> Graph {
    GraphBuilder::new()
        .vertices(&[0, 1, 2])
        .edge(0, 1, 0)
        .edge(1, 2, 0)
        .build()
}

/// Exact verification for every candidate (the graphs are tiny), so the
/// ranking is compared against ground truth with no sampling noise.
fn exact_config() -> EngineConfig {
    EngineConfig {
        verify: VerifyOptions {
            exact_cutoff: 16,
            ..VerifyOptions::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn topk_agrees_with_the_exact_ssp_ranking() {
    // Distinct probabilities give distinct SSPs, so the expected order is
    // unambiguous: descending in p.
    let probs = [0.9, 0.2, 0.7, 0.4, 0.85, 0.05, 0.6];
    let graphs: Vec<ProbabilisticGraph> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| triangle(&format!("g{i}"), p))
        .collect();
    let db = DynamicDatabase::build(graphs.clone(), exact_config());
    let q = triangle_query();
    let delta = 0usize;

    let mut truth: Vec<(usize, f64)> = graphs
        .iter()
        .enumerate()
        .map(|(i, pg)| (i, verify_ssp_exact(pg, &q, delta, 22).unwrap()))
        .collect();
    truth.sort_by(|a, b| b.1.total_cmp(&a.1));

    for k in [1usize, 3, probs.len()] {
        let result = db
            .query_topk(
                &q,
                &TopkParams {
                    k,
                    delta,
                    variant: PruningVariant::OptSspBound,
                },
            )
            .unwrap();
        assert_eq!(result.ranked.len(), k.min(probs.len()));
        for (r, &(gi, ssp)) in result.ranked.iter().zip(&truth) {
            assert_eq!(r.graph, gi, "rank order diverged from the exact SSPs");
            assert!(
                (r.ssp - ssp).abs() < 1e-9,
                "reported ssp {} vs exact {ssp}",
                r.ssp
            );
        }
    }
}

#[test]
fn kth_boundary_ties_survive_a_database_shuffle() {
    // Eight structurally identical triangles (distinct names only): every SSP
    // ties exactly, so the k = 3 cut is decided purely by the content salt.
    // The selected *names* must not move when the insertion order does.
    let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let graphs: Vec<ProbabilisticGraph> = names.iter().map(|n| triangle(n, 0.9)).collect();
    let q = triangle_query();
    let params = TopkParams {
        k: 3,
        delta: 0,
        // Structure sends every structural candidate to (exact) verification:
        // PMI feature selection is not insertion-order canonical, and this
        // test isolates the ranking, not the pruning bounds.
        variant: PruningVariant::Structure,
    };

    let pick_names = |graphs: Vec<ProbabilisticGraph>| -> Vec<String> {
        let db = DynamicDatabase::build(graphs.clone(), exact_config());
        db.query_topk(&q, &params)
            .unwrap()
            .ranked
            .iter()
            .map(|r| graphs[r.graph].name().to_string())
            .collect()
    };

    let reference = pick_names(graphs.clone());
    assert_eq!(reference.len(), 3);
    // Rotations and a reversal: the answer names and their order must hold.
    for rot in [1usize, 3, 5] {
        let mut shuffled = graphs.clone();
        shuffled.rotate_left(rot);
        assert_eq!(
            pick_names(shuffled),
            reference,
            "k-th boundary tie-break moved under rotation {rot}"
        );
    }
    let mut reversed = graphs.clone();
    reversed.reverse();
    assert_eq!(
        pick_names(reversed),
        reference,
        "k-th boundary tie-break moved under reversal"
    );
}

#[test]
fn topk_is_byte_identical_across_threads_and_shards() {
    // The noisy path: adaptive sampling forced on every candidate.
    let ds = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 24,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.3,
        seed: 4242,
        ..PpiDatasetConfig::default()
    });
    let config = |threads: usize, shards: usize| EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
                ..FeatureSelectionParams::default()
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 11,
        },
        verify: VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.1,
                xi: 0.05,
                max_samples: 4_000,
            },
            adaptive: true,
            ..VerifyOptions::default()
        },
        threads,
        shards,
        ..EngineConfig::default()
    };
    let queries: Vec<Graph> = generate_query_workload(
        &ds,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 4,
            seed: 99,
        },
    )
    .into_iter()
    .map(|wq| wq.graph)
    .collect();
    let params = TopkParams {
        k: 5,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };

    let reference = QueryEngine::build(ds.graphs.clone(), config(1, 1));
    for (threads, shards) in [(4usize, 1usize), (0, 1), (1, 8), (0, 8)] {
        let engine = QueryEngine::build(ds.graphs.clone(), config(threads, shards));
        for q in &queries {
            let a = reference.query_topk(q, &params).unwrap();
            let b = engine.query_topk(q, &params).unwrap();
            let key = |r: &pgs::query::pipeline::TopkResult| -> Vec<(usize, u64)> {
                r.ranked
                    .iter()
                    .map(|x| (x.graph, x.ssp.to_bits()))
                    .collect()
            };
            assert_eq!(
                key(&a),
                key(&b),
                "top-k diverged at threads = {threads}, shards = {shards}"
            );
            assert_eq!(a.stats.samples_drawn, b.stats.samples_drawn);
            assert_eq!(a.stats.samples_saved, b.stats.samples_saved);
            assert_eq!(a.stats.topk_pruned, b.stats.topk_pruned);
        }
    }
    // Repeats on one engine are byte-stable too.
    for q in &queries {
        let a = reference.query_topk(q, &params).unwrap();
        let b = reference.query_topk(q, &params).unwrap();
        assert_eq!(a.ranked, b.ranked);
    }
}

#[test]
fn invalid_k_is_a_typed_facade_error() {
    let mut db = ProbGraphDatabase::new();
    db.insert(triangle("only", 0.8));
    db.build_index();
    let q = triangle_query();
    let err = db.query_topk(&q, 0, 0).unwrap_err();
    assert!(matches!(err, DbError::InvalidK(_)));
    assert!(err.to_string().contains("top-k"));
    // A sane k on the same database works.
    assert_eq!(db.query_topk(&q, 1, 0).unwrap().len(), 1);
}
