//! Backward compatibility of the snapshot codec: golden format-v1 and
//! format-v2 snapshot files are checked into `tests/fixtures/` and must keep
//! decoding — and answering queries identically to a fresh build — no matter
//! how the current on-disk format (v3, sharded segments) evolves.
//!
//! The fixtures were produced by the `#[ignore]`d `generate_golden_fixtures`
//! test below; rerun it with
//! `cargo test --test snapshot_compat -- --ignored` only when the *legacy*
//! encoders change deliberately (they should not).

use pgs::prelude::*;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sip_bounds::BoundsConfig;
use pgs_index::{FORMAT_V1, FORMAT_V2};
use pgs_query::pipeline::QueryEngine;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The frozen configuration the fixtures were generated with.  Everything is
/// pinned explicitly so drifting library defaults cannot silently change what
/// the fixtures mean.
fn fixture_config() -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: pgs_index::feature::FeatureSelectionParams {
                max_l: 3,
                alpha: 0.15,
                beta: 0.15,
                gamma: 0.15,
                max_features: 12,
                max_embeddings: 8,
            },
            bounds: BoundsConfig::default(),
            threads: 1,
            seed: 0xF1C5,
        },
        seed: 0xF1C5,
        threads: 1,
        shards: 1,
        ..EngineConfig::default()
    }
}

/// The frozen fixture database: eight small deterministic graphs.
fn fixture_graphs() -> Vec<ProbabilisticGraph> {
    (0..8u32)
        .map(|i| {
            let mut b = GraphBuilder::new()
                .name(format!("fixture-{i}"))
                .vertices(&[i % 3, (i + 1) % 3, (i + 2) % 3, i % 2])
                .edge(0, 1, 0)
                .edge(1, 2, 0)
                .edge(2, 3, 1);
            if i % 2 == 0 {
                b = b.edge(0, 2, 1);
            }
            let skeleton = b.build();
            let probs: Vec<f64> = (0..skeleton.edge_count())
                .map(|e| 0.25 + 0.08 * ((i as usize + e) % 9) as f64)
                .collect();
            ProbabilisticGraph::independent(skeleton, &probs).unwrap()
        })
        .collect()
}

fn fixture_query() -> Graph {
    GraphBuilder::new()
        .vertices(&[0, 1, 2])
        .edge(0, 1, 0)
        .edge(1, 2, 0)
        .build()
}

/// Decodes a golden fixture, checks it answers identically to a fresh build,
/// and checks the legacy re-encoding reproduces the fixture bytes exactly.
fn check_fixture(name: &str, version: u32) {
    let bytes = std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing golden fixture {name}: {e}"));
    let pmi = Pmi::from_bytes(&bytes).expect("golden fixture must keep decoding");
    assert_eq!(pmi.graph_count(), 8);

    // Byte-exact round trip through the legacy encoder.
    let reencoded = pmi
        .to_bytes_versioned(version)
        .expect("legacy re-encode of a legacy snapshot");
    assert_eq!(
        reencoded, bytes,
        "{name}: legacy re-encode diverged from the golden bytes"
    );

    // The loaded index answers exactly like a fresh build.
    let graphs = fixture_graphs();
    let fresh = QueryEngine::build(graphs.clone(), fixture_config());
    let loaded =
        QueryEngine::from_parts(graphs, pmi, fixture_config()).expect("pairing the fixture index");
    let params = QueryParams {
        epsilon: 0.2,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let q = fixture_query();
    let want = fresh.query(&q, &params).unwrap();
    let got = loaded.query(&q, &params).unwrap();
    assert_eq!(got.answers, want.answers, "{name}: answers diverged");
    assert!(
        !want.answers.is_empty(),
        "fixture workload must be non-trivial"
    );
}

#[test]
fn golden_v1_snapshot_still_round_trips() {
    check_fixture("pmi_v1.bin", FORMAT_V1);
}

#[test]
fn golden_v2_snapshot_still_round_trips() {
    check_fixture("pmi_v2.bin", FORMAT_V2);
}

/// A v3 save of the same index loads back and still matches the fixtures'
/// answers — the three formats describe one index.
#[test]
fn v3_save_of_the_fixture_database_agrees_with_the_golden_formats() {
    let graphs = fixture_graphs();
    let engine = QueryEngine::build(graphs.clone(), fixture_config());
    let bytes = engine.pmi().to_bytes();
    let reloaded = Pmi::from_bytes(&bytes).expect("v3 snapshot decodes");
    let loaded = QueryEngine::from_parts(graphs, reloaded, fixture_config()).unwrap();
    let params = QueryParams {
        epsilon: 0.2,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    let q = fixture_query();
    assert_eq!(
        loaded.query(&q, &params).unwrap().answers,
        engine.query(&q, &params).unwrap().answers
    );
}

/// Regenerates the golden fixtures.  Ignored: run manually only when the
/// legacy v1/v2 encoders change on purpose, and commit the new files.
#[test]
#[ignore = "writes tests/fixtures/*.bin; run manually"]
fn generate_golden_fixtures() {
    let engine = QueryEngine::build(fixture_graphs(), fixture_config());
    std::fs::create_dir_all(fixture_path("")).unwrap();
    for (name, version) in [("pmi_v1.bin", FORMAT_V1), ("pmi_v2.bin", FORMAT_V2)] {
        let bytes = engine.pmi().to_bytes_versioned(version).unwrap();
        std::fs::write(fixture_path(name), bytes).unwrap();
    }
}
