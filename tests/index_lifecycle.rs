//! Integration tests of the index lifecycle: snapshot save/load round-trips
//! (v2 with the S-Index section, and v1 back-compat), incremental database
//! mutation, posting-list/brute-force equivalence of the structural phase,
//! and the query-parameter validation that used to fail silently.
//!
//! The acceptance bars (ISSUEs 3 and 4): a loaded snapshot must answer
//! *byte-identically* to the engine that built the index, for every pruning
//! variant; a v1 (pre-S-Index) snapshot must still load, with the summaries
//! re-derived from the database skeletons; an insert/remove sequence through
//! `DynamicDatabase` must match a fresh rebuild on the same final database —
//! S-Index included; the S-Index candidate generator must return exactly the
//! brute-force scan's index set on randomized graphs/queries/δ; and ε = NaN /
//! ε ≤ 0 / ε > 1 must be a typed error instead of a silently empty or full
//! answer set.

use pgs::prelude::*;
use pgs::prob::montecarlo::MonteCarloConfig;
use pgs::query::pipeline::QueryEngine;
use pgs::query::structural::{structural_candidates, structural_candidates_indexed};
use pgs::query::verify::VerifyOptions;
use pgs_graph::model::EdgeId;
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::{Pmi, PmiBuildParams};
use pgs_index::sindex::StructuralIndex;
use pgs_index::sip_bounds::BoundsConfig;
use pgs_index::snapshot::SnapshotError;
use proptest::prelude::*;
use std::path::PathBuf;

/// Graph 001 of Figure 1 (triangle a-b-d).
fn graph_001() -> ProbabilisticGraph {
    let skeleton = GraphBuilder::new()
        .name("001")
        .vertices(&[0, 1, 3])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build();
    let jpt =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.65), (EdgeId(1), 0.55), (EdgeId(2), 0.7)])
            .unwrap();
    ProbabilisticGraph::new(skeleton, vec![jpt], true).unwrap()
}

/// Graph 002 of Figure 1 (the 5-edge graph with a correlated triangle).
fn graph_002() -> ProbabilisticGraph {
    let skeleton = GraphBuilder::new()
        .name("002")
        .vertices(&[0, 0, 1, 1, 2])
        .edge(0, 1, 9)
        .edge(0, 2, 9)
        .edge(1, 2, 9)
        .edge(2, 3, 9)
        .edge(2, 4, 9)
        .build();
    let triangle =
        JointProbTable::from_max_rule(&[(EdgeId(0), 0.7), (EdgeId(1), 0.6), (EdgeId(2), 0.8)])
            .unwrap();
    let pendant = JointProbTable::from_max_rule(&[(EdgeId(3), 0.5), (EdgeId(4), 0.4)]).unwrap();
    ProbabilisticGraph::new(skeleton, vec![triangle, pendant], true).unwrap()
}

/// The query `q` of Figure 1: the labelled triangle a-b-c.
fn query_q() -> Graph {
    GraphBuilder::new()
        .name("q")
        .vertices(&[0, 1, 2])
        .edge(0, 1, 9)
        .edge(1, 2, 9)
        .edge(0, 2, 9)
        .build()
}

fn figure_1_database() -> Vec<ProbabilisticGraph> {
    vec![graph_001(), graph_002()]
}

fn figure_1_config() -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.4,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 16,
            },
            bounds: BoundsConfig::default(),
            threads: 1,
            seed: 1,
        },
        ..EngineConfig::default()
    }
}

fn all_variants() -> [PruningVariant; 3] {
    [
        PruningVariant::Structure,
        PruningVariant::SspBound,
        PruningVariant::OptSspBound,
    ]
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pgs-lifecycle-{tag}-{}.pmi", std::process::id()))
}

#[test]
fn snapshot_round_trip_answers_identically_on_the_figure_1_example() {
    let engine = QueryEngine::build(figure_1_database(), figure_1_config());
    let path = temp_path("fig1");
    engine.pmi().save(&path).unwrap();
    let loaded = QueryEngine::with_index(figure_1_database(), &path, figure_1_config()).unwrap();
    std::fs::remove_file(&path).ok();

    // Identical stats (build_seconds and the exact size both survive).
    assert_eq!(loaded.pmi().stats(), engine.pmi().stats());

    // Byte-identical answers for every pruning variant across a parameter grid.
    let q = query_q();
    for variant in all_variants() {
        for epsilon in [0.05, 0.3, 0.6, 0.95] {
            for delta in [0usize, 1, 2] {
                let params = QueryParams {
                    epsilon,
                    delta,
                    variant,
                };
                let a = engine.query(&q, &params).unwrap();
                let b = loaded.query(&q, &params).unwrap();
                assert_eq!(
                    a.answers, b.answers,
                    "{variant:?} ε={epsilon} δ={delta} diverged after load"
                );
                assert_eq!(a.stats.pruned_by_upper, b.stats.pruned_by_upper);
                assert_eq!(a.stats.accepted_by_lower, b.stats.accepted_by_lower);
                assert_eq!(a.stats.verified, b.stats.verified);
            }
        }
    }
}

#[test]
fn snapshot_round_trip_survives_the_sampled_verification_path() {
    // Force Monte-Carlo verification (exact_cutoff = 0): a loaded index must
    // reproduce even the *sampled* answers bit-for-bit, because the
    // per-candidate RNG seeds derive from content salts that the snapshot
    // preserves.
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 24,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.3,
        seed: 4242,
        ..PpiDatasetConfig::default()
    });
    let config = EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.2,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 11,
        },
        verify: VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.1,
                xi: 0.05,
                max_samples: 800,
            },
            ..VerifyOptions::default()
        },
        ..EngineConfig::default()
    };
    let engine = QueryEngine::build(dataset.graphs.clone(), config);
    let path = temp_path("sampled");
    engine.pmi().save(&path).unwrap();
    let loaded = QueryEngine::with_index(dataset.graphs.clone(), &path, config).unwrap();
    std::fs::remove_file(&path).ok();

    let queries = pgs::datagen::queries::generate_query_workload(
        &dataset,
        &pgs::datagen::queries::QueryWorkloadConfig {
            query_size: 4,
            count: 4,
            seed: 99,
        },
    );
    for wq in &queries {
        for variant in all_variants() {
            let params = QueryParams {
                epsilon: 0.2,
                delta: 1,
                variant,
            };
            let a = engine.query(&wq.graph, &params).unwrap();
            let b = loaded.query(&wq.graph, &params).unwrap();
            assert_eq!(a.answers, b.answers, "{variant:?} sampled answers drifted");
        }
    }
}

#[test]
fn reported_size_bytes_matches_the_file_on_disk() {
    let engine = QueryEngine::build(figure_1_database(), figure_1_config());
    let stats = engine.pmi().stats();
    let path = temp_path("size");
    engine.pmi().save(&path).unwrap();
    let file_len = std::fs::metadata(&path).unwrap().len() as usize;
    std::fs::remove_file(&path).ok();
    // The snapshot is exactly the payload (= size_bytes) plus a fixed header
    // well under 256 bytes.  The old dense accounting was off by the Option
    // discriminants, Vec overhead and every empty cell; this pins the new
    // number to the artifact on disk.
    assert!(
        file_len > stats.size_bytes,
        "file ({file_len}) must exceed the payload ({})",
        stats.size_bytes
    );
    assert!(
        file_len - stats.size_bytes < 256,
        "header margin too large: file {file_len} vs size_bytes {}",
        stats.size_bytes
    );
}

/// Engine configuration with fully exact verification, so answer sets carry
/// no sampling noise and incremental-vs-rebuild equality is exact.
fn exact_verify_config() -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.2,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 3,
        },
        verify: VerifyOptions {
            exact_cutoff: 18,
            ..VerifyOptions::default()
        },
        ..EngineConfig::default()
    }
}

#[test]
fn insert_remove_sequence_matches_a_fresh_rebuild() {
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 16,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 2,
        seed: 77,
        ..PpiDatasetConfig::default()
    });
    let graphs = dataset.graphs.clone();

    // Start from the first 10 graphs, then: insert the remaining 6, remove
    // two from the middle, and re-insert one of them at the end.
    let mut db = DynamicDatabase::build(graphs[..10].to_vec(), exact_verify_config());
    let mut expected: Vec<ProbabilisticGraph> = graphs[..10].to_vec();
    for pg in &graphs[10..] {
        db.insert_graph(pg.clone());
        expected.push(pg.clone());
    }
    for idx in [3usize, 7] {
        let removed = db.remove_graph(idx).unwrap();
        let mirrored = expected.remove(idx);
        assert_eq!(removed.name(), mirrored.name());
    }
    let back = graphs[3].clone();
    db.insert_graph(back.clone());
    expected.push(back);

    // The dynamic database's contents mirror the expected final state.
    assert_eq!(db.len(), expected.len());
    for (a, b) in db.graphs().iter().zip(&expected) {
        assert_eq!(a.name(), b.name());
    }
    // 6 inserts + 2 removes + 1 insert = 9 mutations over 15 graphs.
    assert!(db.staleness() > 0.5);
    assert!(db.should_remine());

    // A fresh rebuild over the same final database must answer identically:
    // the mined feature sets differ (and candidate counts may differ), but
    // pruning is sound and verification is exact, so the *answers* agree.
    let fresh = DynamicDatabase::build(expected, exact_verify_config());
    // The S-Index, unlike the mined features, is a pure function of the
    // database contents: the incrementally maintained one must equal the
    // fresh build's exactly, shard by shard (both engines share the shard
    // count and the salt-derived membership, whatever `PGS_SHARDS` says).
    let (incremental, rebuilt) = (db.engine().pmi(), fresh.engine().pmi());
    assert_eq!(incremental.shard_count(), rebuilt.shard_count());
    for s in 0..incremental.shard_count() {
        assert_eq!(incremental.shard_members(s), rebuilt.shard_members(s));
        assert_eq!(
            incremental.shard_sindex(s),
            rebuilt.shard_sindex(s),
            "incremental S-Index diverged from a fresh rebuild in shard {s}"
        );
    }
    let queries = pgs::datagen::queries::generate_query_workload(
        &dataset,
        &pgs::datagen::queries::QueryWorkloadConfig {
            query_size: 4,
            count: 4,
            seed: 5,
        },
    );
    for wq in &queries {
        for variant in all_variants() {
            for epsilon in [0.2, 0.5] {
                let params = QueryParams {
                    epsilon,
                    delta: 1,
                    variant,
                };
                let incremental = db.query(&wq.graph, &params).unwrap();
                let rebuilt = fresh.query(&wq.graph, &params).unwrap();
                assert_eq!(
                    incremental.answers, rebuilt.answers,
                    "{variant:?} ε={epsilon}: incremental index diverged from rebuild"
                );
            }
        }
    }

    // After re-mining, the staleness is gone and answers still agree.
    db.remine();
    assert_eq!(db.staleness(), 0.0);
    for wq in &queries {
        let params = QueryParams {
            epsilon: 0.5,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(
            db.query(&wq.graph, &params).unwrap().answers,
            fresh.query(&wq.graph, &params).unwrap().answers
        );
    }
}

#[test]
fn incremental_snapshot_still_round_trips() {
    // Mutate, save, reload: the loaded index must carry the churn counter and
    // answer like the mutated engine.
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 12,
        vertices_per_graph: 8,
        edges_per_graph: 11,
        vertex_label_count: 5,
        organism_count: 2,
        seed: 31,
        ..PpiDatasetConfig::default()
    });
    let mut db = DynamicDatabase::build(dataset.graphs[..10].to_vec(), exact_verify_config());
    db.insert_graph(dataset.graphs[10].clone());
    db.insert_graph(dataset.graphs[11].clone());
    db.remove_graph(0).unwrap();
    let staleness = db.staleness();
    assert!(staleness > 0.0);

    let path = temp_path("incremental");
    db.save_index(&path).unwrap();
    // `open` is lazy since format v3: the snapshot file must outlive the
    // queries below, which materialize shard segments on first touch.
    let reopened = DynamicDatabase::open(db.graphs().to_vec(), &path, exact_verify_config());
    let reopened = reopened.unwrap();
    assert_eq!(reopened.staleness(), staleness);

    let queries = pgs::datagen::queries::generate_query_workload(
        &dataset,
        &pgs::datagen::queries::QueryWorkloadConfig {
            query_size: 4,
            count: 3,
            seed: 8,
        },
    );
    for wq in &queries {
        let params = QueryParams {
            epsilon: 0.3,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        assert_eq!(
            reopened.query(&wq.graph, &params).unwrap().answers,
            db.query(&wq.graph, &params).unwrap().answers
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn v1_snapshot_still_loads_and_answers_identically() {
    // An index serialized in the pre-S-Index format (v1) must keep working:
    // decoding yields no summaries, and `QueryEngine::from_parts` re-derives
    // them from the (salt-verified) database skeletons, so every answer —
    // and every per-phase count — matches the v2-built engine exactly.
    let engine = QueryEngine::build(figure_1_database(), figure_1_config());
    let v1_bytes = engine
        .pmi()
        .to_bytes_versioned(pgs_index::snapshot::FORMAT_V1)
        .unwrap();
    let v2_bytes = engine.pmi().to_bytes();
    assert_eq!(
        v2_bytes[8..12],
        pgs_index::snapshot::FORMAT_VERSION.to_le_bytes(),
        "a freshly built index saves in the current format"
    );
    assert!(v1_bytes.len() < v2_bytes.len());

    let old = Pmi::from_bytes(&v1_bytes).unwrap();
    assert!(old.sindex().is_none(), "v1 carries no S-Index");
    let migrated = QueryEngine::from_parts(figure_1_database(), old, figure_1_config()).unwrap();
    // A v1-decoded index is single-shard regardless of `PGS_SHARDS`, so the
    // re-derived S-Index is the whole-database one: compare it against an
    // S-Index built directly from the skeletons (a pure content function).
    let skeletons: Vec<Graph> = figure_1_database()
        .iter()
        .map(|g| g.skeleton().clone())
        .collect();
    assert_eq!(
        migrated
            .pmi()
            .sindex()
            .expect("v1 migration re-derives the S-Index"),
        &StructuralIndex::build(&skeletons),
        "the re-derived S-Index equals one built from the skeletons"
    );
    let q = query_q();
    for variant in all_variants() {
        for epsilon in [0.05, 0.3, 0.6, 0.95] {
            for delta in [0usize, 1, 2] {
                let params = QueryParams {
                    epsilon,
                    delta,
                    variant,
                };
                let a = engine.query(&q, &params).unwrap();
                let b = migrated.query(&q, &params).unwrap();
                assert_eq!(a.answers, b.answers, "{variant:?} ε={epsilon} δ={delta}");
                assert_eq!(
                    a.stats.posting_entries_scanned,
                    b.stats.posting_entries_scanned
                );
                assert_eq!(a.stats.filter_survivors, b.stats.filter_survivors);
            }
        }
    }
    // Once migrated, the index persists in the current format again, with
    // the S-Index section.  The migrated index came from a v1 decode so it is
    // single-shard; the original engine's shard count follows `PGS_SHARDS`.
    // The unsharded v2 downgrade erases that layout difference, so the two
    // encodings must be byte-identical at any shard count.
    let resaved = migrated.pmi().to_bytes();
    assert_eq!(
        resaved[8..12],
        pgs_index::snapshot::FORMAT_VERSION.to_le_bytes(),
        "a migrated index re-saves in the current format"
    );
    assert!(
        Pmi::from_bytes(&resaved).unwrap().sindex().is_some(),
        "the re-derived S-Index is persisted"
    );
    assert_eq!(
        migrated
            .pmi()
            .to_bytes_versioned(pgs_index::snapshot::FORMAT_V2)
            .unwrap(),
        engine
            .pmi()
            .to_bytes_versioned(pgs_index::snapshot::FORMAT_V2)
            .unwrap(),
        "the v2 downgrades of the migrated and original indexes agree"
    );
}

#[test]
fn sindex_matches_bruteforce_on_a_generated_workload() {
    // Phase-1 candidate sets must be byte-identical between the S-Index path
    // and the brute-force scan on a realistic workload (the acceptance
    // criterion of ISSUE 4), across δ and thread counts.
    let dataset = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 32,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.4,
        seed: 0x51DE,
        ..PpiDatasetConfig::default()
    });
    let skeletons: Vec<Graph> = dataset
        .graphs
        .iter()
        .map(|g| g.skeleton().clone())
        .collect();
    let index = StructuralIndex::build(&skeletons);
    let queries = pgs::datagen::queries::generate_query_workload(
        &dataset,
        &pgs::datagen::queries::QueryWorkloadConfig {
            query_size: 5,
            count: 6,
            seed: 0xA11,
        },
    );
    for wq in &queries {
        for delta in 0..=3 {
            let brute = structural_candidates(&skeletons, &wq.graph, delta);
            for threads in [1usize, 0] {
                let (indexed, stats) =
                    structural_candidates_indexed(&index, &skeletons, &wq.graph, delta, threads);
                assert_eq!(
                    indexed,
                    brute,
                    "query {} δ={delta} threads={threads}",
                    wq.graph.name()
                );
                assert!(stats.filter_survivors >= indexed.len());
            }
        }
    }
}

/// Strategy: a small random connected labelled graph (same shape as the one
/// in `tests/property.rs`, scaled down for the equivalence sweep).
fn arb_graph(max_vertices: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_vertices)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(0..labels, n),
                proptest::collection::vec((0..n, 0..n), 0..n * 2),
                proptest::collection::vec(0..u64::MAX, n - 1),
            )
        })
        .prop_map(|(vlabels, extra, parents)| {
            let mut g = Graph::new();
            for &l in &vlabels {
                g.add_vertex(Label(l));
            }
            for i in 1..vlabels.len() {
                let p = (parents[i - 1] % i as u64) as u32;
                let _ = g.add_edge(VertexId(i as u32), VertexId(p), Label(0));
            }
            for (u, v) in extra {
                if u != v {
                    let _ = g.add_edge(VertexId(u as u32), VertexId(v as u32), Label(0));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    /// Posting-list candidate generation returns exactly the same index set
    /// as the brute-force `structural_candidates` on randomized
    /// graphs/queries/δ.
    #[test]
    fn posting_list_candidates_equal_bruteforce(
        db in proptest::collection::vec(arb_graph(8, 4), 1..10),
        q in arb_graph(6, 4),
        delta in 0usize..4,
    ) {
        let index = StructuralIndex::build(&db);
        let brute = structural_candidates(&db, &q, delta);
        let (indexed, stats) = structural_candidates_indexed(&index, &db, &q, delta, 1);
        prop_assert_eq!(&indexed, &brute);
        prop_assert!(stats.filter_survivors >= indexed.len());
        // Incremental construction yields the same index, hence the same set.
        let mut grown = StructuralIndex::default();
        for g in &db {
            grown.append(g);
        }
        let (grown_set, _) = structural_candidates_indexed(&grown, &db, &q, delta, 1);
        prop_assert_eq!(&grown_set, &brute);
    }
}

#[test]
fn invalid_epsilon_is_a_typed_error_not_a_silent_answer_set() {
    let engine = QueryEngine::build(figure_1_database(), figure_1_config());
    let q = query_q();
    for epsilon in [f64::NAN, 0.0, -1.0, 1.0 + 1e-9, f64::INFINITY] {
        let params = QueryParams {
            epsilon,
            delta: 1,
            variant: PruningVariant::OptSspBound,
        };
        assert!(
            matches!(
                engine.query(&q, &params),
                Err(QueryError::InvalidEpsilon { .. })
            ),
            "ε = {epsilon} must be rejected by query()"
        );
        assert!(matches!(
            engine.exact_scan(&q, &params),
            Err(QueryError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            engine.query_batch(std::slice::from_ref(&q), &params),
            Err(QueryError::InvalidEpsilon { .. })
        ));
    }
    // ε = 1.0 exactly is legal (the closed upper end of (0, 1]).
    let params = QueryParams {
        epsilon: 1.0,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    };
    assert!(engine.query(&q, &params).is_ok());
}

#[test]
fn corrupt_snapshots_fail_with_typed_errors() {
    let engine = QueryEngine::build(figure_1_database(), figure_1_config());
    let bytes = engine.pmi().to_bytes();

    // Garbage file → BadMagic.
    assert!(matches!(
        Pmi::from_bytes(b"definitely not a PMI snapshot"),
        Err(SnapshotError::BadMagic)
    ));

    // Future format version → UnsupportedVersion.
    let mut future = bytes.clone();
    future[8] = 0x7F;
    assert!(matches!(
        Pmi::from_bytes(&future),
        Err(SnapshotError::UnsupportedVersion(_))
    ));

    // Truncation anywhere → a typed error, never a panic or a bogus index.
    for cut in [bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Pmi::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // A tampered parameter block → fingerprint mismatch.
    let mut tampered = bytes;
    tampered[8 + 4 + 8 + 1] ^= 0x40;
    assert!(matches!(
        Pmi::from_bytes(&tampered),
        Err(SnapshotError::Corrupt(_))
    ));
}
