//! Determinism guarantees of the parallel query executor.
//!
//! Every candidate draws from an RNG seeded by
//! `derive_seed([engine seed, query hash, phase tag, graph content hash])`,
//! so a sampled query answer must be byte-identical across
//!
//! * (a) repeated runs on the same engine,
//! * (b) every thread count (`threads = 1`, `4` and `0` = auto),
//! * (c) database insertion orders (the content hash, not the database
//!   index, seeds the sampler), and
//! * `query_batch` must agree with a per-query loop.
//!
//! The engine configuration forces the *sampling* verification path
//! (`exact_cutoff = 0`): exact evaluation would be trivially deterministic and
//! hide a regression in the seeding scheme.

use pgs::datagen::ppi::{generate_ppi_dataset, PpiDatasetConfig};
use pgs::datagen::queries::{generate_query_workload, QueryWorkloadConfig, WorkloadQuery};
use pgs::prelude::*;
use pgs::prob::montecarlo::MonteCarloConfig;
use pgs::query::pipeline::QueryEngine;
use pgs::query::verify::VerifyOptions;
use pgs_index::feature::FeatureSelectionParams;
use pgs_index::pmi::PmiBuildParams;
use pgs_index::sip_bounds::BoundsConfig;

fn dataset() -> pgs::datagen::ppi::PpiDataset {
    generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 24,
        vertices_per_graph: 10,
        edges_per_graph: 14,
        vertex_label_count: 6,
        organism_count: 3,
        perturbation: 0.3,
        seed: 4242,
        ..PpiDatasetConfig::default()
    })
}

fn engine_config(threads: usize) -> EngineConfig {
    EngineConfig {
        pmi: PmiBuildParams {
            features: FeatureSelectionParams {
                alpha: 0.0,
                beta: 0.2,
                gamma: 0.0,
                max_l: 3,
                max_features: 24,
                max_embeddings: 12,
            },
            bounds: BoundsConfig::default(),
            threads: 2,
            seed: 11,
        },
        // Force the Monte-Carlo sampler: determinism must hold on the noisy
        // path, not just when the exact short-circuit applies.
        verify: VerifyOptions {
            exact_cutoff: 0,
            mc: MonteCarloConfig {
                tau: 0.1,
                xi: 0.05,
                max_samples: 800,
            },
            ..VerifyOptions::default()
        },
        threads,
        ..EngineConfig::default()
    }
}

fn workload(ds: &pgs::datagen::ppi::PpiDataset) -> Vec<WorkloadQuery> {
    generate_query_workload(
        ds,
        &QueryWorkloadConfig {
            query_size: 4,
            count: 4,
            seed: 99,
        },
    )
}

fn params() -> QueryParams {
    QueryParams {
        epsilon: 0.2,
        delta: 1,
        variant: PruningVariant::OptSspBound,
    }
}

#[test]
fn repeated_runs_return_byte_identical_answers() {
    let ds = dataset();
    let engine = QueryEngine::build(ds.graphs.clone(), engine_config(0));
    for wq in &workload(&ds) {
        let first = engine.query(&wq.graph, &params()).unwrap();
        for _ in 0..3 {
            let again = engine.query(&wq.graph, &params()).unwrap();
            assert_eq!(first.answers, again.answers);
            assert_eq!(first.stats.pruned_by_upper, again.stats.pruned_by_upper);
            assert_eq!(first.stats.accepted_by_lower, again.stats.accepted_by_lower);
            assert_eq!(first.stats.verified, again.stats.verified);
        }
    }
}

#[test]
fn thread_count_does_not_change_answers() {
    let ds = dataset();
    let queries = workload(&ds);
    let reference = QueryEngine::build(ds.graphs.clone(), engine_config(1));
    for threads in [4usize, 0] {
        let engine = QueryEngine::build(ds.graphs.clone(), engine_config(threads));
        for wq in &queries {
            let a = reference.query(&wq.graph, &params()).unwrap();
            let b = engine.query(&wq.graph, &params()).unwrap();
            assert_eq!(
                a.answers, b.answers,
                "threads = {threads} diverged from the sequential run"
            );
            assert_eq!(
                a.stats.probabilistic_candidates,
                b.stats.probabilistic_candidates
            );
        }
    }
}

#[test]
fn shuffled_insertion_order_permutes_but_does_not_change_sampled_answers() {
    let ds = dataset();
    let queries = workload(&ds);
    let n = ds.graphs.len();
    // A fixed derangement-ish permutation: rotate by 7 (gcd(7, 24) = 1).
    let perm: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n).collect();
    let shuffled: Vec<ProbabilisticGraph> = perm.iter().map(|&i| ds.graphs[i].clone()).collect();

    let original = QueryEngine::build(ds.graphs.clone(), engine_config(0));
    let reordered = QueryEngine::build(shuffled, engine_config(0));

    // The `Structure` variant sends every structural candidate straight to the
    // sampled verifier, isolating exactly the path whose RNG used to depend on
    // iteration order.  (The probabilistic pruning bounds are sound either
    // way, but the PMI's *feature selection* is not insertion-order canonical,
    // so OPT-SSPBound may verify different borderline subsets per order.)
    let params = QueryParams {
        epsilon: 0.2,
        delta: 1,
        variant: PruningVariant::Structure,
    };
    for wq in &queries {
        let a = original.query(&wq.graph, &params).unwrap();
        let b = reordered.query(&wq.graph, &params).unwrap();
        // Map the reordered engine's answers back to original indices.
        let mut mapped: Vec<usize> = b.answers.iter().map(|&i| perm[i]).collect();
        mapped.sort_unstable();
        assert_eq!(
            a.answers, mapped,
            "sampled answers drifted with database insertion order"
        );
        assert_eq!(a.stats.verified, b.stats.verified);
    }
}

#[test]
fn query_batch_equals_per_query_loop() {
    let ds = dataset();
    let queries = workload(&ds);
    let engine = QueryEngine::build(ds.graphs.clone(), engine_config(0));
    let graphs: Vec<Graph> = queries.iter().map(|wq| wq.graph.clone()).collect();
    let batch = engine.query_batch(&graphs, &params()).unwrap();
    assert_eq!(batch.results.len(), graphs.len());
    for (q, br) in graphs.iter().zip(&batch.results) {
        let solo = engine.query(q, &params()).unwrap();
        assert_eq!(br.answers, solo.answers, "batch diverged from query loop");
        assert_eq!(br.stats.verified, solo.stats.verified);
    }
}

#[test]
fn exact_scan_sampling_fallback_is_order_independent() {
    // Graphs large enough that `verify_ssp_exact` overflows its enumeration
    // budget take the sampling fallback inside `exact_scan`; with per-graph
    // content seeding the verdicts must survive a database rotation too.
    let ds = generate_ppi_dataset(&PpiDatasetConfig {
        graph_count: 8,
        vertices_per_graph: 14,
        edges_per_graph: 26,
        vertex_label_count: 4,
        organism_count: 2,
        perturbation: 0.3,
        seed: 91,
        ..PpiDatasetConfig::default()
    });
    let n = ds.graphs.len();
    let perm: Vec<usize> = (0..n).map(|i| (i * 3 + 1) % n).collect();
    let shuffled: Vec<ProbabilisticGraph> = perm.iter().map(|&i| ds.graphs[i].clone()).collect();
    let original = QueryEngine::build(ds.graphs.clone(), engine_config(0));
    let reordered = QueryEngine::build(shuffled, engine_config(0));
    let wq = &workload(&ds)[0];
    let params = params();
    let a = original.exact_scan(&wq.graph, &params).unwrap();
    let b = reordered.exact_scan(&wq.graph, &params).unwrap();
    let mut mapped: Vec<usize> = b.answers.iter().map(|&i| perm[i]).collect();
    mapped.sort_unstable();
    assert_eq!(a.answers, mapped, "exact-scan fallback drifted with order");
}
